// The switch supervisor: deterministic backoff schedule, retry-after-
// rollback, per-request deadlines (with engine revocation), the
// Healthy -> Degraded -> Quarantined health machine with probe recovery,
// fault-storm scheduling, and the cycle-identity promise of the unfaulted
// supervised path.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "core/fault_inject.hpp"
#include "core/mercury.hpp"
#include "core/switch_supervisor.hpp"
#include "kernel/syscalls.hpp"
#include "obs/obs.hpp"
#include "obs/postmortem.hpp"
#include "tests/test_seed.hpp"
#include "util/assert.hpp"

namespace mercury::testing {
namespace {

using core::ExecMode;
using core::FaultInjector;
using core::FaultKind;
using core::FaultPlan;
using core::FaultSite;
using core::FaultStorm;
using core::Mercury;
using core::MercuryConfig;
using core::RequestOptions;
using core::RequestState;
using core::SupervisedRequest;
using core::SupervisorConfig;
using core::SupervisorHealth;
using core::SwitchSupervisor;
using kernel::Sub;
using kernel::Sys;

/// Leave the global injector quiet (no plan, no storm) and route postmortem
/// bundles into the test temp dir.
struct InjectorGuard {
  InjectorGuard() { obs::set_postmortem_dir(::testing::TempDir()); }
  ~InjectorGuard() {
    core::fault_injector().disarm();
    core::fault_injector().stop_storm();
    obs::set_postmortem_dir("");
  }
};

struct MercuryBox {
  explicit MercuryBox(MercuryConfig cfg = {}, std::size_t mem_mb = 128,
                      std::size_t cpus = 1) {
    hw::MachineConfig mc;
    mc.mem_kb = mem_mb * 1024;
    mc.num_cpus = cpus;
    machine = std::make_unique<hw::Machine>(mc);
    if (cfg.kernel_frames == 0)
      cfg.kernel_frames = ((mem_mb / 2) * 1024ull * 1024) / hw::kPageSize;
    mercury = std::make_unique<Mercury>(*machine, cfg);
  }
  std::unique_ptr<hw::Machine> machine;
  std::unique_ptr<Mercury> mercury;
};

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
  std::fclose(f);
  return content;
}

TEST(SwitchSupervisor, BackoffScheduleIsDeterministicUnderSeed) {
  const std::uint64_t seed = test_seed(0xB0FF5EEDull);
  SupervisorConfig cfg;
  cfg.backoff_base_ms = 1.0;
  cfg.backoff_factor = 2.0;
  cfg.backoff_cap_ms = 16.0;
  cfg.backoff_jitter = 0.25;

  // Same seed, same attempt sequence: the schedule replays exactly.
  util::Rng a(seed), b(seed);
  std::vector<hw::Cycles> first, second;
  for (std::uint32_t attempt = 1; attempt <= 10; ++attempt) {
    first.push_back(SwitchSupervisor::backoff_delay(cfg, attempt, a));
    second.push_back(SwitchSupervisor::backoff_delay(cfg, attempt, b));
  }
  EXPECT_EQ(first, second);

  // Every delay lands inside the jitter envelope of its nominal value, and
  // the nominal value is capped.
  for (std::uint32_t attempt = 1; attempt <= 10; ++attempt) {
    double nominal_ms = cfg.backoff_base_ms;
    for (std::uint32_t i = 1; i < attempt; ++i) nominal_ms *= cfg.backoff_factor;
    nominal_ms = std::min(nominal_ms, cfg.backoff_cap_ms);
    const hw::Cycles lo =
        hw::us_to_cycles(nominal_ms * 1000.0 * (1.0 - cfg.backoff_jitter));
    const hw::Cycles hi =
        hw::us_to_cycles(nominal_ms * 1000.0 * (1.0 + cfg.backoff_jitter));
    EXPECT_GE(first[attempt - 1], lo) << "attempt " << attempt;
    EXPECT_LE(first[attempt - 1], hi) << "attempt " << attempt;
  }

  // Zero jitter collapses to the exact nominal schedule.
  SupervisorConfig flat = cfg;
  flat.backoff_jitter = 0.0;
  util::Rng c(seed);
  EXPECT_EQ(SwitchSupervisor::backoff_delay(flat, 1, c),
            hw::us_to_cycles(1000.0));
  EXPECT_EQ(SwitchSupervisor::backoff_delay(flat, 3, c),
            hw::us_to_cycles(4000.0));
  EXPECT_EQ(SwitchSupervisor::backoff_delay(flat, 10, c),
            hw::us_to_cycles(16'000.0)) << "cap applies";

  // Distinct (fixed) seeds diverge somewhere in a 10-delay sequence.
  util::Rng d(12345), e(54321);
  bool diverged = false;
  for (std::uint32_t attempt = 1; attempt <= 10; ++attempt)
    if (SwitchSupervisor::backoff_delay(cfg, attempt, d) !=
        SwitchSupervisor::backoff_delay(cfg, attempt, e))
      diverged = true;
  EXPECT_TRUE(diverged);
}

TEST(SwitchSupervisor, UnfaultedSwitchNowIsCycleIdenticalToTheBareEngine) {
  // Supervision must be free until something goes wrong: a full supervised
  // round trip lands on exactly the engine's clock — no timers armed, no
  // cycles charged by the bookkeeping.
  MercuryBox bare;
  ASSERT_TRUE(bare.mercury->engine().switch_now(ExecMode::kPartialVirtual));
  ASSERT_TRUE(bare.mercury->engine().switch_now(ExecMode::kNative));

  MercuryBox supervised;
  SwitchSupervisor sup(supervised.mercury->engine());
  ASSERT_TRUE(sup.switch_now(ExecMode::kPartialVirtual));
  ASSERT_TRUE(sup.switch_now(ExecMode::kNative));
  EXPECT_EQ(sup.stats().committed, 2u);
  EXPECT_EQ(sup.stats().backoffs, 0u);
  EXPECT_EQ(sup.stats().retries, 0u);

  EXPECT_EQ(bare.mercury->engine().stats().last_attach_cycles,
            supervised.mercury->engine().stats().last_attach_cycles);
  EXPECT_EQ(bare.mercury->engine().stats().last_detach_cycles,
            supervised.mercury->engine().stats().last_detach_cycles);
  EXPECT_EQ(bare.machine->cpu(0).now(), supervised.machine->cpu(0).now())
      << "the supervised happy path charged simulated cycles";
}

TEST(SwitchSupervisor, RetryAfterRollbackCommits) {
  InjectorGuard guard;
  MercuryBox box;
  Mercury& m = *box.mercury;
  SupervisorConfig cfg;
  cfg.backoff_base_ms = 0.5;
  SwitchSupervisor sup(m.engine(), cfg);

  FaultPlan plan;
  plan.site = FaultSite::kAdoptProtect;
  plan.trigger_count = 1;
  core::fault_injector().arm(plan);

  EXPECT_TRUE(sup.switch_now(ExecMode::kPartialVirtual))
      << "one single-shot fault must cost a retry, not the request";
  EXPECT_EQ(m.mode(), ExecMode::kPartialVirtual);
  EXPECT_EQ(m.engine().stats().rollbacks, 1u);
  EXPECT_EQ(sup.stats().attempts, 2u);
  EXPECT_EQ(sup.stats().retries, 1u);
  EXPECT_EQ(sup.stats().backoffs, 1u);
  EXPECT_GT(sup.stats().total_backoff_cycles, 0u);
  // One failed attach, then a success: the streak reset, health held.
  EXPECT_EQ(sup.health(), SupervisorHealth::kHealthy);
  EXPECT_EQ(sup.consecutive_failures(), 0u);

  ASSERT_TRUE(sup.switch_now(ExecMode::kNative));
}

TEST(SwitchSupervisor, DeadlineFailsTheRequestAndRevokesTheEngine) {
  MercuryBox box;
  Mercury& m = *box.mercury;
  SwitchSupervisor sup(m.engine());

  // A held VO section defers the commit indefinitely (§5.1.1); the request
  // deadline must fire first, fail the request, and revoke the engine
  // request so the switch cannot commit later behind the caller's back.
  bool release_now = false;
  m.kernel().spawn("holder", [&](Sys& s) -> Sub<void> {
    core::VirtObject::Section section(m.native_vo());
    while (!release_now) co_await s.sleep_us(2'000.0);
    section.release();
    for (;;) co_await s.sleep_us(10'000.0);
  });
  m.kernel().run_for(hw::kCyclesPerMillisecond);
  ASSERT_EQ(m.native_vo().active_refs(), 1);

  bool done = false;
  RequestState terminal = RequestState::kQueued;
  RequestOptions opts;
  opts.deadline = 30 * hw::kCyclesPerMillisecond;
  sup.submit(ExecMode::kPartialVirtual, opts,
             [&](const SupervisedRequest& r) {
               done = true;
               terminal = r.state;
             });
  m.kernel().run_for(60 * hw::kCyclesPerMillisecond);

  EXPECT_TRUE(done);
  EXPECT_EQ(terminal, RequestState::kFailedDeadline);
  EXPECT_EQ(sup.stats().failed_deadline, 1u);
  EXPECT_GE(m.engine().stats().cancels, 1u) << "in-flight request not revoked";
  EXPECT_TRUE(m.engine().idle());
  EXPECT_TRUE(sup.idle());
  // Deadline kills are not evidence against virtualization health.
  EXPECT_EQ(sup.health(), SupervisorHealth::kHealthy);
  EXPECT_EQ(sup.consecutive_failures(), 0u);

  release_now = true;
  m.kernel().run_for(100 * hw::kCyclesPerMillisecond);
  EXPECT_EQ(m.mode(), ExecMode::kNative)
      << "a deadline-failed request committed after the fact";
}

TEST(SwitchSupervisor, ExhaustedAttemptBudgetFailsTheRequest) {
  InjectorGuard guard;
  MercuryBox box;
  Mercury& m = *box.mercury;
  SupervisorConfig cfg;
  cfg.backoff_base_ms = 0.5;
  cfg.quarantine_after = 100;  // keep health out of this test's way
  cfg.degraded_after = 2;
  SwitchSupervisor sup(m.engine(), cfg);

  core::fault_injector().arm_storm(FaultStorm::uniform(1.0, 7));
  RequestOptions opts;
  opts.max_attempts = 3;
  EXPECT_FALSE(sup.switch_now(ExecMode::kPartialVirtual,
                              500 * hw::kCyclesPerMillisecond, opts));
  core::fault_injector().stop_storm();

  const SupervisedRequest* req = sup.find(1);
  ASSERT_NE(req, nullptr);
  EXPECT_EQ(req->state, RequestState::kFailedAttempts);
  EXPECT_EQ(req->attempts, 3u);
  EXPECT_EQ(sup.stats().failed_attempts, 1u);
  EXPECT_EQ(m.mode(), ExecMode::kNative);
  EXPECT_EQ(sup.health(), SupervisorHealth::kDegraded)
      << "3 consecutive failed attaches pass degraded_after=2";
}

TEST(SwitchSupervisor, QuarantineFailsFastAndProbeRecovers) {
  InjectorGuard guard;
  MercuryBox box;
  Mercury& m = *box.mercury;
  SupervisorConfig cfg;
  cfg.backoff_base_ms = 0.5;
  cfg.degraded_after = 2;
  cfg.quarantine_after = 3;
  cfg.probe_interval_ms = 20.0;
  SwitchSupervisor sup(m.engine(), cfg);

  const std::uint64_t bundles_before = obs::postmortem_count();
  core::fault_injector().arm_storm(
      FaultStorm::uniform(1.0, test_seed(0xC0FFEEull)));
  EXPECT_FALSE(sup.switch_now(ExecMode::kPartialVirtual));
  EXPECT_EQ(sup.health(), SupervisorHealth::kQuarantined);
  EXPECT_EQ(sup.stats().quarantines, 1u);
  EXPECT_EQ(sup.stats().failed_quarantined, 1u);
  EXPECT_EQ(m.mode(), ExecMode::kNative) << "quarantined means native";

  // The quarantine left a postmortem bundle naming itself.
  EXPECT_GT(obs::postmortem_count(), bundles_before);
  const std::string bundle = read_file(obs::last_postmortem_path());
  EXPECT_NE(bundle.find("\"reason\":\"quarantine\""), std::string::npos);

  // New virtual-target requests fail fast via their callbacks — no retry
  // grind against a mode the health machine has written off.
  bool done = false;
  RequestState terminal = RequestState::kQueued;
  sup.submit(ExecMode::kPartialVirtual, {}, [&](const SupervisedRequest& r) {
    done = true;
    terminal = r.state;
  });
  EXPECT_TRUE(done) << "quarantine fast-fail must resolve synchronously";
  EXPECT_EQ(terminal, RequestState::kFailedQuarantined);
  // Native-target requests still pass: native always works.
  EXPECT_TRUE(sup.switch_now(ExecMode::kNative));

  // The storm blows over; the next probe attaches, health recovers, and the
  // supervisor returns the machine to its native resting state.
  core::fault_injector().stop_storm();
  EXPECT_TRUE(m.kernel().run_until(
      [&] {
        return sup.health() == SupervisorHealth::kHealthy &&
               m.mode() == ExecMode::kNative && sup.idle();
      },
      500 * hw::kCyclesPerMillisecond))
      << "probe never recovered the quarantine";
  EXPECT_GE(sup.stats().probes, 1u);
  EXPECT_EQ(sup.stats().recoveries, 1u);

  // Recovered for real: a plain supervised attach works again.
  EXPECT_TRUE(sup.switch_now(ExecMode::kPartialVirtual));
  EXPECT_TRUE(sup.switch_now(ExecMode::kNative));
}

TEST(SwitchSupervisor, CancelRevokesQueuedAndInFlightRequests) {
  MercuryBox box;
  Mercury& m = *box.mercury;
  SwitchSupervisor sup(m.engine());

  bool release_now = false;
  m.kernel().spawn("holder", [&](Sys& s) -> Sub<void> {
    core::VirtObject::Section section(m.native_vo());
    while (!release_now) co_await s.sleep_us(2'000.0);
    section.release();
    for (;;) co_await s.sleep_us(10'000.0);
  });
  m.kernel().run_for(hw::kCyclesPerMillisecond);

  const std::uint64_t in_flight = sup.submit(ExecMode::kPartialVirtual);
  const std::uint64_t queued = sup.submit(ExecMode::kFullVirtual);
  ASSERT_EQ(sup.find(in_flight)->state, RequestState::kInFlight);
  ASSERT_EQ(sup.find(queued)->state, RequestState::kQueued);

  EXPECT_TRUE(sup.cancel(queued));
  EXPECT_EQ(sup.find(queued)->state, RequestState::kCancelled);
  EXPECT_TRUE(sup.cancel(in_flight));
  EXPECT_EQ(sup.find(in_flight)->state, RequestState::kCancelled);
  EXPECT_FALSE(sup.cancel(in_flight)) << "terminal requests cannot re-cancel";
  EXPECT_FALSE(sup.cancel(0));
  EXPECT_TRUE(sup.idle());
  EXPECT_TRUE(m.engine().idle()) << "cancel left the engine request armed";
  EXPECT_EQ(sup.stats().cancelled, 2u);

  release_now = true;
  m.kernel().run_for(100 * hw::kCyclesPerMillisecond);
  EXPECT_EQ(m.mode(), ExecMode::kNative)
      << "a cancelled request committed after the fact";
}

TEST(SwitchSupervisor, HigherPriorityRequestDispatchesFirst) {
  MercuryBox box;
  Mercury& m = *box.mercury;
  SwitchSupervisor sup(m.engine());

  // Park the engine behind a held section so both submissions queue.
  bool release_now = false;
  m.kernel().spawn("holder", [&](Sys& s) -> Sub<void> {
    core::VirtObject::Section section(m.native_vo());
    while (!release_now) co_await s.sleep_us(2'000.0);
    section.release();
    for (;;) co_await s.sleep_us(10'000.0);
  });
  m.kernel().run_for(hw::kCyclesPerMillisecond);

  std::vector<std::uint64_t> order;
  const auto record = [&](const SupervisedRequest& r) { order.push_back(r.id); };
  sup.submit(ExecMode::kPartialVirtual, {}, record);  // goes in flight now
  RequestOptions low, high;
  low.priority = 9;
  high.priority = 0;
  const std::uint64_t low_id = sup.submit(ExecMode::kFullVirtual, low, record);
  const std::uint64_t high_id =
      sup.submit(ExecMode::kPartialVirtual, high, record);

  release_now = true;
  ASSERT_TRUE(m.kernel().run_until([&] { return sup.idle(); },
                                   500 * hw::kCyclesPerMillisecond));
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[1], high_id) << "priority 0 must outrank priority 9";
  EXPECT_EQ(order[2], low_id);
  EXPECT_EQ(sup.stats().committed, 3u);
  ASSERT_TRUE(sup.switch_now(ExecMode::kNative));
}

TEST(SwitchSupervisor, CallbackMaySubmitFollowUpRequests) {
  MercuryBox box;
  Mercury& m = *box.mercury;
  SwitchSupervisor sup(m.engine());

  // The documented contract: a resolution callback may submit follow-up
  // requests. The re-entrant enqueue() grows the callback store while the
  // current callback is still executing — chain enough follow-ups that any
  // element relocation would tear the running std::function out from under
  // itself (regression: use-after-free of the callback's captures).
  constexpr int kChain = 64;
  int resolved = 0;
  std::function<void(const SupervisedRequest&)> link =
      [&](const SupervisedRequest& r) {
        EXPECT_EQ(r.state, RequestState::kCommitted);
        ++resolved;
        if (resolved < kChain) {
          const ExecMode next = r.target == ExecMode::kNative
                                    ? ExecMode::kPartialVirtual
                                    : ExecMode::kNative;
          sup.submit(next, {}, link);
        }
      };
  sup.submit(ExecMode::kPartialVirtual, {}, link);
  ASSERT_TRUE(m.kernel().run_until([&] { return resolved >= kChain; },
                                   5'000 * hw::kCyclesPerMillisecond));
  EXPECT_EQ(sup.stats().committed, static_cast<std::uint64_t>(kChain));
  EXPECT_TRUE(sup.idle());
  ASSERT_TRUE(sup.switch_now(ExecMode::kNative));
}

TEST(SwitchSupervisor, QuarantineSweepSurvivesCallbackSubmits) {
  InjectorGuard guard;
  MercuryBox box;
  Mercury& m = *box.mercury;
  SupervisorConfig cfg;
  cfg.backoff_base_ms = 0.5;
  cfg.degraded_after = 1;
  cfg.quarantine_after = 2;
  cfg.probe_enabled = false;
  SwitchSupervisor sup(m.engine(), cfg);

  core::fault_injector().arm_storm(
      FaultStorm::uniform(1.0, test_seed(0x5EE9Full)));

  // Several queued attach requests, each reacting to the quarantine sweep
  // by submitting one more virtual request — re-entering enqueue() (and
  // growing the request store) while the sweep is mid-flight over it
  // (regression: deque iterator invalidation). The follow-ups fast-fail
  // synchronously: health is already quarantined when the callbacks fire.
  constexpr int kRequests = 8;
  int fast_failed = 0;
  int followups = 0;
  for (int i = 0; i < kRequests; ++i) {
    sup.submit(ExecMode::kPartialVirtual, {},
               [&](const SupervisedRequest& r) {
                 if (r.state != RequestState::kFailedQuarantined) return;
                 ++fast_failed;
                 sup.submit(ExecMode::kFullVirtual, {},
                            [&](const SupervisedRequest& rr) {
                              EXPECT_EQ(rr.state,
                                        RequestState::kFailedQuarantined);
                              ++followups;
                            });
               });
  }
  ASSERT_TRUE(m.kernel().run_until(
      [&] {
        return sup.health() == SupervisorHealth::kQuarantined && sup.idle();
      },
      5'000 * hw::kCyclesPerMillisecond));
  core::fault_injector().stop_storm();

  EXPECT_EQ(fast_failed, kRequests);
  EXPECT_EQ(followups, kRequests);
  for (const SupervisedRequest& r : sup.requests())
    EXPECT_TRUE(core::request_state_terminal(r.state))
        << "request " << r.id << " stranded in state "
        << core::request_state_name(r.state);
  EXPECT_EQ(m.mode(), ExecMode::kNative) << "quarantined means native";
}

TEST(SwitchSupervisor, ProbeRetestsTheModeThatDroveQuarantine) {
  InjectorGuard guard;
  MercuryBox box;
  Mercury& m = *box.mercury;
  SupervisorConfig cfg;
  cfg.backoff_base_ms = 0.5;
  cfg.degraded_after = 1;
  cfg.quarantine_after = 2;
  cfg.probe_interval_ms = 10.0;
  SwitchSupervisor sup(m.engine(), cfg);

  core::fault_injector().arm_storm(
      FaultStorm::uniform(1.0, test_seed(0xF0BE5EEDull)));
  RequestOptions opts;
  opts.max_attempts = 4;
  EXPECT_FALSE(sup.switch_now(ExecMode::kFullVirtual,
                              500 * hw::kCyclesPerMillisecond, opts));
  ASSERT_EQ(sup.health(), SupervisorHealth::kQuarantined);
  core::fault_injector().stop_storm();

  ASSERT_TRUE(m.kernel().run_until(
      [&] {
        return sup.health() == SupervisorHealth::kHealthy &&
               m.mode() == ExecMode::kNative && sup.idle();
      },
      1'000 * hw::kCyclesPerMillisecond))
      << "probe never recovered the quarantine";

  // A full-virtual quarantine must be retested at full virtual: a partial-
  // virtual probe succeeding says nothing about the mode that broke.
  bool saw_probe = false;
  for (const SupervisedRequest& r : sup.requests())
    if (r.probe) {
      saw_probe = true;
      EXPECT_EQ(r.target, ExecMode::kFullVirtual);
    }
  EXPECT_TRUE(saw_probe);
  EXPECT_EQ(sup.stats().recoveries, 1u);
}

TEST(FaultInjector, ArmOverAnArmedPlanIsRejected) {
  InjectorGuard guard;
  FaultInjector& fi = core::fault_injector();
  FaultPlan p;
  p.site = FaultSite::kRendezvous;
  fi.arm(p);
  EXPECT_THROW(fi.arm(p), util::InvariantError)
      << "silent plan replacement makes fault sweeps pass vacuously";
  EXPECT_TRUE(fi.armed()) << "the rejected arm must not clobber the live plan";
  EXPECT_EQ(fi.plan().site, FaultSite::kRendezvous);

  // replace() is the explicit swap; it counts the old plan as unfired.
  const std::uint64_t unfired_before = fi.unfired_disarms();
  FaultPlan q;
  q.site = FaultSite::kStackFixup;
  fi.replace(q);
  EXPECT_EQ(fi.unfired_disarms(), unfired_before + 1);
  EXPECT_EQ(fi.plan().site, FaultSite::kStackFixup);

  // disarm() of a never-fired plan counts too; re-arming afterwards is fine.
  fi.disarm();
  EXPECT_EQ(fi.unfired_disarms(), unfired_before + 2);
  fi.arm(p);
  EXPECT_TRUE(fi.armed());
  fi.disarm();
}

TEST(FaultInjector, StormSchedulingIsSeededAndDeterministic) {
  InjectorGuard guard;
  FaultInjector& fi = core::fault_injector();

  // Record which visit (1-based, 0 = quiet) fires in each of 24 windows.
  const auto pattern = [&](std::uint64_t seed) {
    FaultStorm storm;
    storm.rate[static_cast<std::size_t>(FaultSite::kRendezvous)] = 0.5;
    storm.max_trigger_depth = 4;
    storm.seed = seed;
    fi.arm_storm(storm);
    std::vector<int> fires;
    for (int w = 0; w < 24; ++w) {
      fi.begin_window();
      int fired_at = 0;
      for (int visit = 1; visit <= 6; ++visit) {
        try {
          fi.on_site(FaultSite::kRendezvous);
        } catch (const core::FaultInjected& f) {
          EXPECT_EQ(f.site, FaultSite::kRendezvous);
          fired_at = visit;
        }
      }
      fires.push_back(fired_at);
    }
    fi.stop_storm();
    return fires;
  };

  const std::uint64_t seed = test_seed(0x57012Dull);
  const std::vector<int> a = pattern(seed);
  EXPECT_EQ(a, pattern(seed)) << "same seed must replay the same storm";
  EXPECT_NE(pattern(1111), pattern(2222));

  // Every fire lands within the declared trigger depth, and a 50% rate over
  // 24 windows fires somewhere without firing everywhere.
  int fired = 0;
  for (const int v : a) {
    EXPECT_LE(v, 4);
    if (v > 0) ++fired;
  }
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 24);
}

TEST(FaultInjector, StormDecayBurstAndPauseSemantics) {
  InjectorGuard guard;
  FaultInjector& fi = core::fault_injector();

  // decay 0: the first fire zeroes the rate — exactly one fire, ever.
  FaultStorm once = FaultStorm::uniform(1.0, 3);
  once.decay = 0.0;
  fi.arm_storm(once);
  std::uint64_t fires = 0;
  for (int w = 0; w < 6; ++w) {
    fi.begin_window();
    for (int visit = 0; visit < 8; ++visit) {
      try {
        fi.on_site(FaultSite::kRendezvous);
      } catch (const core::FaultInjected&) {
        ++fires;
      }
    }
  }
  EXPECT_EQ(fires, 1u);
  EXPECT_EQ(fi.storm_fires(), 1u);
  EXPECT_EQ(fi.storm_windows(), 6u);
  // Decay mutates the live rates only; the armed regime stays quotable.
  EXPECT_EQ(fi.storm().rate[0], 0.0);
  EXPECT_EQ(fi.storm_config().rate[0], 1.0);
  fi.stop_storm();

  // max_fires stops the whole storm after the budget.
  FaultStorm capped = FaultStorm::uniform(1.0, 4);
  capped.max_fires = 2;
  fi.arm_storm(capped);
  fires = 0;
  for (int w = 0; w < 6; ++w) {
    fi.begin_window();
    for (int visit = 0; visit < 8; ++visit) {
      try {
        fi.on_site(FaultSite::kRendezvous);
      } catch (const core::FaultInjected&) {
        ++fires;
      }
    }
  }
  EXPECT_EQ(fires, 2u);
  EXPECT_FALSE(fi.storm_active());

  // A paused injector counts visits but never fires (the engine pauses the
  // storm across rollback so it cannot fault the fault handler).
  fi.arm_storm(FaultStorm::uniform(1.0, 5));
  fi.begin_window();
  {
    FaultInjector::PauseGuard pause;
    for (int visit = 0; visit < 8; ++visit)
      EXPECT_NO_THROW(fi.on_site(FaultSite::kRendezvous));
  }
  EXPECT_FALSE(fi.paused());
  fi.stop_storm();
}

}  // namespace
}  // namespace mercury::testing
