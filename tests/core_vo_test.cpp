// Virtualization objects: reference counting, dispatch charges, eager
// tracking equivalence, rendezvous protocols, stack fixup walk.
#include <gtest/gtest.h>

#include <memory>

#include "core/mercury.hpp"
#include "core/rendezvous.hpp"
#include "core/stack_fixup.hpp"
#include "kernel/syscalls.hpp"

namespace mercury::testing {
namespace {

using core::ExecMode;
using core::Mercury;
using core::MercuryConfig;
using core::Rendezvous;
using core::RendezvousProtocol;
using core::VirtObject;
using kernel::Sub;
using kernel::Sys;

struct Box {
  explicit Box(MercuryConfig cfg = {}, std::size_t cpus = 1) {
    hw::MachineConfig mc;
    mc.mem_kb = 192 * 1024;
    mc.num_cpus = cpus;
    machine = std::make_unique<hw::Machine>(mc);
    if (cfg.kernel_frames == 0)
      cfg.kernel_frames = (64ull * 1024 * 1024) / hw::kPageSize;
    mercury = std::make_unique<Mercury>(*machine, cfg);
  }
  std::unique_ptr<hw::Machine> machine;
  std::unique_ptr<Mercury> mercury;
};

TEST(VirtObject, OpGuardCountsEntriesAndExits) {
  Box box;
  core::NativeVo& vo = box.mercury->native_vo();
  hw::Cpu& cpu = box.machine->cpu(0);
  const auto entries = vo.total_entries();
  EXPECT_EQ(vo.active_refs(), 0);
  {
    VirtObject::OpGuard g(vo, cpu);
    EXPECT_EQ(vo.active_refs(), 1);
    {
      VirtObject::OpGuard g2(vo, cpu);
      EXPECT_EQ(vo.active_refs(), 2);
    }
    EXPECT_EQ(vo.active_refs(), 1);
  }
  EXPECT_EQ(vo.active_refs(), 0);
  EXPECT_EQ(vo.total_entries(), entries + 2);
}

TEST(VirtObject, SectionHoldsAcrossRelease) {
  Box box;
  core::NativeVo& vo = box.mercury->native_vo();
  auto section = std::make_unique<VirtObject::Section>(vo);
  EXPECT_EQ(vo.active_refs(), 1);
  section->release();
  EXPECT_EQ(vo.active_refs(), 0);
  section.reset();  // double release must not underflow
  EXPECT_EQ(vo.active_refs(), 0);
}

TEST(VirtObject, MercuryVosChargePerOpButDirectOpsDoNot) {
  Box box;
  EXPECT_GT(box.mercury->native_vo().per_op_charge(), 0u);
  EXPECT_GT(box.mercury->driver_vo().per_op_charge(), 0u);
  // Every kernel op goes through a guard: cycles move on each call.
  hw::Cpu& cpu = box.machine->cpu(0);
  const hw::Cycles before = cpu.now();
  box.mercury->native_vo().stack_switch(cpu);
  EXPECT_GE(cpu.now() - before,
            box.mercury->native_vo().per_op_charge());
}

TEST(EagerTracking, TableMatchesLazyRebuildAfterActivity) {
  // Run identical activity under eager tracking and under lazy rebuild; the
  // owner/type tables the VMM ends up enforcing must agree.
  auto run_activity = [](Mercury& m) {
    bool done = false;
    m.kernel().spawn("act", [&](Sys& s) -> Sub<void> {
      const auto va = s.mmap(32 * hw::kPageSize, true);
      s.touch_pages(va, 32, true);
      const auto child = s.fork([](Sys& cs) -> Sub<void> {
        cs.exit(0);
        co_return;
      });
      co_await s.wait_pid(child);
      s.munmap(va, 16 * hw::kPageSize);
      done = true;
    });
    EXPECT_TRUE(m.kernel().run_until([&] { return done; },
                                     500 * hw::kCyclesPerMillisecond));
  };

  MercuryConfig lazy_cfg;
  Box lazy(lazy_cfg);
  run_activity(*lazy.mercury);
  ASSERT_TRUE(lazy.mercury->switch_to(ExecMode::kPartialVirtual));

  MercuryConfig eager_cfg;
  eager_cfg.switch_config.eager_page_tracking = true;
  Box eager(eager_cfg);
  run_activity(*eager.mercury);
  ASSERT_TRUE(eager.mercury->switch_to(ExecMode::kPartialVirtual));
  EXPECT_GT(eager.mercury->eager_vo()->tracked_updates(), 0u);

  // Both tables must pass the structural invariants and agree on the typed
  // frames of the kernel's page-table forest.
  EXPECT_FALSE(lazy.mercury->hypervisor().page_info().check_invariants());
  EXPECT_FALSE(eager.mercury->hypervisor().page_info().check_invariants());
  const auto& lk = lazy.mercury->kernel();
  const auto& ek = eager.mercury->kernel();
  ASSERT_EQ(lk.kernel_l1_frames().size(), ek.kernel_l1_frames().size());
  for (std::size_t i = 0; i < lk.kernel_l1_frames().size(); ++i) {
    const auto& lt =
        lazy.mercury->hypervisor().page_info().at(lk.kernel_l1_frames()[i]);
    const auto& et =
        eager.mercury->hypervisor().page_info().at(ek.kernel_l1_frames()[i]);
    EXPECT_EQ(lt.type, et.type);
    EXPECT_EQ(lt.pinned, et.pinned);
  }
}

TEST(EagerTracking, AttachIsCheaperButNativeOpsAreDearer) {
  auto fork_and_attach = [](bool eager) {
    MercuryConfig cfg;
    cfg.switch_config.eager_page_tracking = eager;
    Box box(cfg);
    hw::Cycles fork_cost = 0;
    bool done = false;
    box.mercury->kernel().spawn("f", [&](Sys& s) -> Sub<void> {
      const auto va = s.mmap(128 * hw::kPageSize, true);
      s.touch_pages(va, 128, true);
      const hw::Cycles t0 = s.cpu().now();
      const auto child = s.fork([](Sys& cs) -> Sub<void> {
        cs.exit(0);
        co_return;
      });
      co_await s.wait_pid(child);
      fork_cost = s.cpu().now() - t0;
      done = true;
    });
    EXPECT_TRUE(box.mercury->kernel().run_until(
        [&] { return done; }, 500 * hw::kCyclesPerMillisecond));
    EXPECT_TRUE(box.mercury->switch_to(ExecMode::kPartialVirtual));
    return std::make_pair(fork_cost,
                          box.mercury->engine().stats().last_attach_cycles);
  };
  const auto [lazy_fork, lazy_attach] = fork_and_attach(false);
  const auto [eager_fork, eager_attach] = fork_and_attach(true);
  EXPECT_GT(eager_fork, lazy_fork) << "eager tracking taxes native PTE work";
  EXPECT_LT(eager_attach, lazy_attach) << "eager attach skips the rebuild";
}

TEST(RendezvousTest, SingleCpuIsFree) {
  hw::MachineConfig mc;
  mc.mem_kb = 8 * 1024;
  hw::Machine m(mc);
  const auto stats =
      Rendezvous::run(m, m.cpu(0), RendezvousProtocol::kIpiSharedVar);
  EXPECT_EQ(stats.latency(), 0u);
}

TEST(RendezvousTest, AlignsAllCpuClocks) {
  hw::MachineConfig mc;
  mc.num_cpus = 4;
  mc.mem_kb = 8 * 1024;
  hw::Machine m(mc);
  m.cpu(1).charge(5000);
  m.cpu(3).charge(12000);
  const auto stats =
      Rendezvous::run(m, m.cpu(0), RendezvousProtocol::kIpiSharedVar);
  EXPECT_EQ(m.cpu(0).now(), m.cpu(1).now());
  EXPECT_EQ(m.cpu(1).now(), m.cpu(2).now());
  EXPECT_EQ(m.cpu(2).now(), m.cpu(3).now());
  EXPECT_GE(m.cpu(0).now(), stats.entry_time);
}

TEST(RendezvousTest, SharedVarScalesWorseThanTreeAtHighCounts) {
  auto latency = [](std::size_t cpus, RendezvousProtocol p) {
    hw::MachineConfig mc;
    mc.num_cpus = cpus;
    mc.mem_kb = 8 * 1024;
    hw::Machine m(mc);
    return Rendezvous::run(m, m.cpu(0), p).latency();
  };
  // The paper prefers IPI+shared-var on its 2-way box...
  EXPECT_LE(latency(2, RendezvousProtocol::kIpiSharedVar),
            latency(2, RendezvousProtocol::kTree));
  // ...and anticipates the loosely-coupled protocol winning at scale (§8).
  EXPECT_GT(latency(32, RendezvousProtocol::kIpiSharedVar),
            latency(32, RendezvousProtocol::kTree));
}

TEST(StackFixup, EagerWalkRewritesOnlyKernelFrames) {
  Box box;
  Mercury& m = *box.mercury;
  m.kernel().spawn("a", [](Sys& s) -> Sub<void> {
    for (;;) co_await s.sleep_us(5'000.0);  // blocked in-kernel: ring0 frame
  });
  m.kernel().spawn("b", [](Sys& s) -> Sub<void> {
    for (;;) co_await s.compute_us(1'000.0);  // preempted: ring3 frame
  });
  m.kernel().run_for(3 * hw::kCyclesPerMillisecond);

  const auto stats =
      core::fix_all_saved_contexts(box.machine->cpu(0), m.kernel(),
                                   hw::Ring::kRing1);
  EXPECT_GE(stats.tasks_scanned, 2u);
  m.kernel().for_each_task([&](kernel::Task& t) {
    if (!t.saved_ctx.valid) return;
    if (t.saved_ctx.cs.rpl() == hw::Ring::kRing3) return;  // untouched user
    EXPECT_EQ(t.saved_ctx.cs.rpl(), hw::Ring::kRing1);
    EXPECT_EQ(t.saved_ctx.ss.rpl(), hw::Ring::kRing1);
  });
}

}  // namespace
}  // namespace mercury::testing
