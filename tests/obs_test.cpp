// Telemetry layer: registry semantics, trace ring buffer, span nesting over
// simulated time, and well-formedness of the JSON exports.
#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <string>

#include "hw/machine.hpp"
#include "obs/obs.hpp"

namespace mercury::testing {
namespace {

// --- a minimal JSON syntax checker (no deps) --------------------------------
// Validates structure and answers "does this string literal appear as a key
// or value"; enough to prove the exporters emit parseable documents.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {
    skip_ws();
    ok_ = value();
    skip_ws();
    if (pos_ != s_.size()) ok_ = false;
  }
  bool ok() const { return ok_; }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::string l(lit);
    if (s_.compare(pos_, l.size(), l) != 0) return false;
    pos_ += l.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  bool ok_ = false;
};

// The registry is process-global and shared across test cases, so every test
// uses its own instrument names and asserts on deltas, never totals.

TEST(MetricsRegistry, CounterGetOrCreateAndInc) {
  obs::Counter& c = obs::registry().counter("test.obs.counter_a");
  const std::uint64_t before = c.value();
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), before + 42);
  // Same name -> same instrument.
  EXPECT_EQ(&obs::registry().counter("test.obs.counter_a"), &c);
  // Different label -> different instrument.
  obs::Counter& labeled = obs::registry().counter("test.obs.counter_a", "x=1");
  EXPECT_NE(&labeled, &c);
  labeled.inc(7);
  EXPECT_EQ(c.value(), before + 42);
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
  obs::Gauge& g = obs::registry().gauge("test.obs.gauge_a");
  g.set(2.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(MetricsRegistry, HistogramRecordsMomentsAndQuantiles) {
  obs::Hist& h = obs::registry().histogram("test.obs.hist_a");
  h.reset();
  for (std::uint64_t v : {100ull, 200ull, 300ull, 400ull}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.stats().sum(), 1000.0);
  EXPECT_DOUBLE_EQ(h.stats().min(), 100.0);
  EXPECT_DOUBLE_EQ(h.stats().max(), 400.0);
  EXPECT_GT(h.quantile(0.5), 0u);
  EXPECT_GE(h.quantile(0.99), h.quantile(0.5));
}

TEST(MetricsRegistry, SnapshotFindsInstrumentsByNameAndLabel) {
  obs::registry().counter("test.obs.snap_counter", "cpu=0").inc(3);
  obs::registry().counter("test.obs.snap_counter", "cpu=1").inc(5);
  obs::registry().histogram("test.obs.snap_hist").record(64);
  const obs::Snapshot snap = obs::snapshot();
  const obs::InstrumentSample* c0 = snap.find("test.obs.snap_counter", "cpu=0");
  const obs::InstrumentSample* c1 = snap.find("test.obs.snap_counter", "cpu=1");
  ASSERT_NE(c0, nullptr);
  ASSERT_NE(c1, nullptr);
  EXPECT_DOUBLE_EQ(c0->value, 3.0);
  EXPECT_DOUBLE_EQ(c1->value, 5.0);
  EXPECT_EQ(c0->kind, obs::InstrumentKind::kCounter);
  const obs::InstrumentSample* h = snap.find("test.obs.snap_hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->kind, obs::InstrumentKind::kHist);
  EXPECT_GE(h->count, 1u);
  EXPECT_EQ(snap.find("test.obs.does_not_exist"), nullptr);
}

TEST(MetricsRegistry, CallbackGaugeViewsLiveStateAndUnregisters) {
  double live = 1.0;
  {
    obs::CallbackGuard guard;
    guard.add("test.obs.cb", "engine=test", [&] { return live; });
    const obs::Snapshot snap = obs::snapshot();  // keep alive while s points in
    const obs::InstrumentSample* s = snap.find("test.obs.cb", "engine=test");
    ASSERT_NE(s, nullptr);
    EXPECT_DOUBLE_EQ(s->value, 1.0);
    EXPECT_EQ(s->kind, obs::InstrumentKind::kCallback);
    live = 17.0;  // no re-registration needed: read at snapshot time
    EXPECT_DOUBLE_EQ(obs::snapshot().find("test.obs.cb", "engine=test")->value,
                     17.0);
  }
  // Guard destroyed -> callback gone (and snapshot no longer dereferences
  // the dangling `live`).
  EXPECT_EQ(obs::snapshot().find("test.obs.cb", "engine=test"), nullptr);
}

TEST(MetricsRegistry, ResetValuesZeroesButKeepsInstruments) {
  obs::Counter& c = obs::registry().counter("test.obs.reset_counter");
  c.inc(9);
  const std::size_t n = obs::registry().size();
  obs::registry().reset_values();
  EXPECT_EQ(obs::registry().size(), n);  // nothing destroyed
  EXPECT_EQ(c.value(), 0u);              // cached reference still valid
  c.inc();
  EXPECT_EQ(c.value(), 1u);
}

TEST(TraceBuffer, RecordsAndReportsEvents) {
  obs::TraceBuffer buf(8);
  buf.record(obs::TraceEvent{"a", obs::TraceCat::kSwitch, 0, 100, 200});
  buf.record_instant(0, obs::TraceCat::kOther, "b", 150);
  const auto evs = buf.events();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_STREQ(evs[0].name, "a");
  EXPECT_FALSE(evs[0].instant());
  EXPECT_TRUE(evs[1].instant());
  EXPECT_EQ(buf.recorded(), 2u);
  EXPECT_EQ(buf.dropped(), 0u);
}

TEST(TraceBuffer, WrapsAroundKeepingNewestEvents) {
  obs::TraceBuffer buf(4);
  for (std::uint64_t i = 0; i < 10; ++i)
    buf.record_instant(0, obs::TraceCat::kOther, "e", 1000 + i);
  const auto evs = buf.events();
  ASSERT_EQ(evs.size(), 4u);  // capacity, not 10
  EXPECT_EQ(buf.recorded(), 10u);
  EXPECT_EQ(buf.dropped(), 6u);
  // Oldest evicted: the survivors are the last four, oldest first.
  EXPECT_EQ(evs.front().begin, 1006u);
  EXPECT_EQ(evs.back().begin, 1009u);
}

TEST(TraceBuffer, PerCpuRingsAreIndependent) {
  obs::TraceBuffer buf(2);
  for (std::uint64_t i = 0; i < 5; ++i)
    buf.record_instant(0, obs::TraceCat::kOther, "cpu0", 10 + i);
  buf.record_instant(3, obs::TraceCat::kOther, "cpu3", 7);
  const auto evs = buf.events();
  ASSERT_EQ(evs.size(), 3u);  // 2 survivors on cpu0 + 1 on cpu3
  // Merged oldest-first across CPUs.
  EXPECT_STREQ(evs[0].name, "cpu3");
  EXPECT_EQ(evs[1].cpu, 0u);
}

TEST(TraceBuffer, DisabledBufferRecordsNothing) {
  obs::TraceBuffer buf(4);
  buf.set_enabled(false);
  buf.record_instant(0, obs::TraceCat::kOther, "e", 1);
  EXPECT_TRUE(buf.events().empty());
  EXPECT_EQ(buf.recorded(), 0u);
}

TEST(TraceSpan, NestedSpansNestOverSimulatedTime) {
  hw::MachineConfig mc;
  mc.mem_kb = 16 * 1024;
  hw::Machine machine(mc);
  hw::Cpu& cpu = machine.cpu(0);

  obs::TraceBuffer& buf = obs::trace_buffer();
  buf.set_enabled(true);
  buf.clear();
  {
    obs::TraceSpan outer(cpu, obs::TraceCat::kSwitch, "outer");
    cpu.charge(1000);
    {
      obs::TraceSpan inner(cpu, obs::TraceCat::kTransfer, "inner");
      cpu.charge(500);
    }
    cpu.charge(250);
  }
  const auto evs = buf.events();
  ASSERT_EQ(evs.size(), 2u);
  const obs::TraceEvent* outer = &evs[0];
  const obs::TraceEvent* inner = &evs[1];
  if (std::string(outer->name) != "outer") std::swap(outer, inner);
  EXPECT_STREQ(outer->name, "outer");
  EXPECT_STREQ(inner->name, "inner");
  // Proper nesting: inner entirely inside outer, durations in cycles.
  EXPECT_GE(inner->begin, outer->begin);
  EXPECT_LE(inner->end, outer->end);
  EXPECT_EQ(inner->end - inner->begin, 500u);
  EXPECT_EQ(outer->end - outer->begin, 1750u);
  buf.clear();
}

TEST(JsonExport, MetricsJsonIsWellFormedAndCarriesSchema) {
  obs::registry().counter("test.obs.json \"quoted\"\\name").inc();
  obs::registry().histogram("test.obs.json_hist").record(4096);
  obs::registry().gauge("test.obs.json_gauge").set(-0.25);
  const std::string json = obs::to_json(obs::snapshot());
  EXPECT_TRUE(JsonChecker(json).ok()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"schema\":\"mercury.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("test.obs.json_hist"), std::string::npos);
  // The quote and backslash in the instrument name must arrive escaped.
  EXPECT_NE(json.find("\\\"quoted\\\"\\\\name"), std::string::npos);
}

TEST(JsonExport, ChromeTraceIsWellFormedAndHasOurEvents) {
  obs::TraceBuffer buf(16);
  buf.record(obs::TraceEvent{"span_x", obs::TraceCat::kVmm, 2, 3000, 9000});
  buf.record_instant(1, obs::TraceCat::kSwitch, "mark_y", 4500);
  const std::string json = obs::chrome_trace_json(buf);
  EXPECT_TRUE(JsonChecker(json).ok()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"span_x\""), std::string::npos);
  EXPECT_NE(json.find("\"mark_y\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete event
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant event
  EXPECT_NE(json.find("\"vmm\""), std::string::npos);        // category name
}

TEST(SummaryTable, RendersCountersAndHistograms) {
  obs::registry().counter("test.obs.table_counter").inc(5);
  obs::registry().histogram("test.obs.table_hist").record(1234);
  const std::string table = obs::summary_table(obs::snapshot());
  EXPECT_NE(table.find("test.obs.table_counter"), std::string::npos);
  EXPECT_NE(table.find("test.obs.table_hist"), std::string::npos);
}

}  // namespace
}  // namespace mercury::testing
