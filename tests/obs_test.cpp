// Telemetry layer: registry semantics, trace ring buffer, span nesting over
// simulated time, and well-formedness of the JSON exports.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <string>

#include "hw/machine.hpp"
#include "obs/obs.hpp"
#include "obs/pause_ledger.hpp"
#include "obs/postmortem.hpp"
#include "obs/profiler.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "tests/json_checker.hpp"
#include "util/stats.hpp"

namespace mercury::testing {
namespace {

// The registry is process-global and shared across test cases, so every test
// uses its own instrument names and asserts on deltas, never totals.

TEST(MetricsRegistry, CounterGetOrCreateAndInc) {
  obs::Counter& c = obs::registry().counter("test.obs.counter_a");
  const std::uint64_t before = c.value();
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), before + 42);
  // Same name -> same instrument.
  EXPECT_EQ(&obs::registry().counter("test.obs.counter_a"), &c);
  // Different label -> different instrument.
  obs::Counter& labeled = obs::registry().counter("test.obs.counter_a", "x=1");
  EXPECT_NE(&labeled, &c);
  labeled.inc(7);
  EXPECT_EQ(c.value(), before + 42);
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
  obs::Gauge& g = obs::registry().gauge("test.obs.gauge_a");
  g.set(2.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(MetricsRegistry, HistogramRecordsMomentsAndQuantiles) {
  obs::Hist& h = obs::registry().histogram("test.obs.hist_a");
  h.reset();
  for (std::uint64_t v : {100ull, 200ull, 300ull, 400ull}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.stats().sum(), 1000.0);
  EXPECT_DOUBLE_EQ(h.stats().min(), 100.0);
  EXPECT_DOUBLE_EQ(h.stats().max(), 400.0);
  EXPECT_GT(h.quantile(0.5), 0u);
  EXPECT_GE(h.quantile(0.99), h.quantile(0.5));
}

TEST(MetricsRegistry, SnapshotFindsInstrumentsByNameAndLabel) {
  obs::registry().counter("test.obs.snap_counter", "cpu=0").inc(3);
  obs::registry().counter("test.obs.snap_counter", "cpu=1").inc(5);
  obs::registry().histogram("test.obs.snap_hist").record(64);
  const obs::Snapshot snap = obs::snapshot();
  const obs::InstrumentSample* c0 = snap.find("test.obs.snap_counter", "cpu=0");
  const obs::InstrumentSample* c1 = snap.find("test.obs.snap_counter", "cpu=1");
  ASSERT_NE(c0, nullptr);
  ASSERT_NE(c1, nullptr);
  EXPECT_DOUBLE_EQ(c0->value, 3.0);
  EXPECT_DOUBLE_EQ(c1->value, 5.0);
  EXPECT_EQ(c0->kind, obs::InstrumentKind::kCounter);
  const obs::InstrumentSample* h = snap.find("test.obs.snap_hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->kind, obs::InstrumentKind::kHist);
  EXPECT_GE(h->count, 1u);
  EXPECT_EQ(snap.find("test.obs.does_not_exist"), nullptr);
}

TEST(MetricsRegistry, CallbackGaugeViewsLiveStateAndUnregisters) {
  double live = 1.0;
  {
    obs::CallbackGuard guard;
    guard.add("test.obs.cb", "engine=test", [&] { return live; });
    const obs::Snapshot snap = obs::snapshot();  // keep alive while s points in
    const obs::InstrumentSample* s = snap.find("test.obs.cb", "engine=test");
    ASSERT_NE(s, nullptr);
    EXPECT_DOUBLE_EQ(s->value, 1.0);
    EXPECT_EQ(s->kind, obs::InstrumentKind::kCallback);
    live = 17.0;  // no re-registration needed: read at snapshot time
    EXPECT_DOUBLE_EQ(obs::snapshot().find("test.obs.cb", "engine=test")->value,
                     17.0);
  }
  // Guard destroyed -> callback gone (and snapshot no longer dereferences
  // the dangling `live`).
  EXPECT_EQ(obs::snapshot().find("test.obs.cb", "engine=test"), nullptr);
}

TEST(MetricsRegistry, ResetValuesZeroesButKeepsInstruments) {
  obs::Counter& c = obs::registry().counter("test.obs.reset_counter");
  c.inc(9);
  const std::size_t n = obs::registry().size();
  obs::registry().reset_values();
  EXPECT_EQ(obs::registry().size(), n);  // nothing destroyed
  EXPECT_EQ(c.value(), 0u);              // cached reference still valid
  c.inc();
  EXPECT_EQ(c.value(), 1u);
}

TEST(TraceBuffer, RecordsAndReportsEvents) {
  obs::TraceBuffer buf(8);
  buf.record(obs::TraceEvent{"a", obs::TraceCat::kSwitch, 0, 100, 200});
  buf.record_instant(0, obs::TraceCat::kOther, "b", 150);
  const auto evs = buf.events();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_STREQ(evs[0].name, "a");
  EXPECT_FALSE(evs[0].instant());
  EXPECT_TRUE(evs[1].instant());
  EXPECT_EQ(buf.recorded(), 2u);
  EXPECT_EQ(buf.dropped(), 0u);
}

TEST(TraceBuffer, WrapsAroundKeepingNewestEvents) {
  obs::TraceBuffer buf(4);
  for (std::uint64_t i = 0; i < 10; ++i)
    buf.record_instant(0, obs::TraceCat::kOther, "e", 1000 + i);
  const auto evs = buf.events();
  ASSERT_EQ(evs.size(), 4u);  // capacity, not 10
  EXPECT_EQ(buf.recorded(), 10u);
  EXPECT_EQ(buf.dropped(), 6u);
  // Oldest evicted: the survivors are the last four, oldest first.
  EXPECT_EQ(evs.front().begin, 1006u);
  EXPECT_EQ(evs.back().begin, 1009u);
}

TEST(TraceBuffer, PerCpuRingsAreIndependent) {
  obs::TraceBuffer buf(2);
  for (std::uint64_t i = 0; i < 5; ++i)
    buf.record_instant(0, obs::TraceCat::kOther, "cpu0", 10 + i);
  buf.record_instant(3, obs::TraceCat::kOther, "cpu3", 7);
  const auto evs = buf.events();
  ASSERT_EQ(evs.size(), 3u);  // 2 survivors on cpu0 + 1 on cpu3
  // Merged oldest-first across CPUs.
  EXPECT_STREQ(evs[0].name, "cpu3");
  EXPECT_EQ(evs[1].cpu, 0u);
}

TEST(TraceBuffer, DisabledBufferRecordsNothing) {
  obs::TraceBuffer buf(4);
  buf.set_enabled(false);
  buf.record_instant(0, obs::TraceCat::kOther, "e", 1);
  EXPECT_TRUE(buf.events().empty());
  EXPECT_EQ(buf.recorded(), 0u);
}

TEST(TraceBuffer, RingWrapFromManyCpusKeepsGlobalSeqMonotonic) {
  obs::TraceBuffer buf(4);
  // Emit far past capacity from three CPUs, with globally increasing begin
  // timestamps so emission order == timestamp order.
  hw::Cycles t = 1000;
  for (std::uint64_t round = 0; round < 10; ++round)
    for (std::uint32_t cpu = 0; cpu < 3; ++cpu)
      buf.record_instant(cpu, obs::TraceCat::kOther, "wrap", t += 10);
  const auto evs = buf.events();
  ASSERT_EQ(evs.size(), 12u);  // 4 survivors per CPU ring
  EXPECT_EQ(buf.recorded(), 30u);
  EXPECT_EQ(buf.dropped(), 18u);
  // The merged export must be ordered and the global sequence must be
  // strictly monotonic across the wrapped rings — Chrome trace viewers
  // key causal ordering off it.
  for (std::size_t i = 1; i < evs.size(); ++i) {
    EXPECT_GT(evs[i].seq, evs[i - 1].seq);
    EXPECT_GE(evs[i].begin, evs[i - 1].begin);
  }
  const std::string json = obs::chrome_trace_json(buf);
  EXPECT_TRUE(JsonChecker(json).ok()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"seq\""), std::string::npos);
}

TEST(TraceBuffer, SeqSurvivesClear) {
  obs::TraceBuffer buf(4);
  buf.record_instant(0, obs::TraceCat::kOther, "before", 10);
  const std::uint64_t first_seq = buf.events()[0].seq;
  buf.clear();
  buf.record_instant(0, obs::TraceCat::kOther, "after", 20);
  // Exports from before and after a clear() must still order correctly.
  EXPECT_GT(buf.events()[0].seq, first_seq);
}

TEST(SpanContext, SpansChainParentChildAndRestoreAmbient) {
  hw::MachineConfig mc;
  mc.mem_kb = 16 * 1024;
  hw::Machine machine(mc);
  hw::Cpu& cpu = machine.cpu(0);

  obs::TraceBuffer& buf = obs::trace_buffer();
  buf.set_enabled(true);
  buf.clear();
  EXPECT_FALSE(obs::current_span_context().valid());
  obs::SpanContext outer_ctx, inner_ctx;
  {
    obs::TraceSpan outer(cpu, obs::TraceCat::kSwitch, "ctx_outer");
    outer_ctx = outer.context();
    EXPECT_TRUE(outer_ctx.valid());
    // A root span starts its own trace.
    EXPECT_EQ(outer_ctx.parent_id, 0u);
    cpu.charge(100);
    {
      obs::TraceSpan inner(cpu, obs::TraceCat::kTransfer, "ctx_inner");
      inner_ctx = inner.context();
      // Child: same trace, parent = the enclosing span.
      EXPECT_EQ(inner_ctx.trace_id, outer_ctx.trace_id);
      EXPECT_EQ(inner_ctx.parent_id, outer_ctx.span_id);
      EXPECT_NE(inner_ctx.span_id, outer_ctx.span_id);
      cpu.charge(100);
    }
    // Inner scope gone: the ambient context is the outer span again.
    EXPECT_EQ(obs::current_span_context().span_id, outer_ctx.span_id);
  }
  EXPECT_FALSE(obs::current_span_context().valid());

  // The recorded events carry the ids, and the Chrome export exposes them.
  const auto evs = buf.events();
  ASSERT_EQ(evs.size(), 2u);
  for (const auto& ev : evs) {
    if (std::string(ev.name) == "ctx_inner") {
      EXPECT_EQ(ev.trace_id, outer_ctx.trace_id);
      EXPECT_EQ(ev.parent_id, outer_ctx.span_id);
    } else {
      EXPECT_EQ(ev.trace_id, outer_ctx.trace_id);
      EXPECT_EQ(ev.parent_id, 0u);
    }
  }
  const std::string json = obs::chrome_trace_json(buf);
  EXPECT_TRUE(JsonChecker(json).ok()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"trace\""), std::string::npos);
  EXPECT_NE(json.find("\"parent\""), std::string::npos);
  buf.clear();
}

TEST(SpanContext, InstantEventsInheritAmbientContext) {
  hw::MachineConfig mc;
  mc.mem_kb = 16 * 1024;
  hw::Machine machine(mc);
  hw::Cpu& cpu = machine.cpu(0);

  obs::TraceBuffer& buf = obs::trace_buffer();
  buf.set_enabled(true);
  buf.clear();
  {
    obs::TraceSpan span(cpu, obs::TraceCat::kSwitch, "ctx_span");
    buf.record_instant(0, obs::TraceCat::kOther, "ctx_mark", cpu.now());
    const auto evs = buf.events();
    ASSERT_EQ(evs.size(), 1u);  // the span is still open
    EXPECT_EQ(evs[0].trace_id, span.context().trace_id);
    EXPECT_EQ(evs[0].parent_id, span.context().span_id);
  }
  buf.clear();
}

TEST(TraceNodeScope, StampsNodeOnEventsAndRestores) {
  obs::TraceBuffer& buf = obs::trace_buffer();
  buf.set_enabled(true);
  buf.clear();
  EXPECT_EQ(obs::current_trace_node(), 0u);
  {
    obs::TraceNodeScope scope(3);
    buf.record_instant(0, obs::TraceCat::kCluster, "on_node", 100);
  }
  buf.record_instant(0, obs::TraceCat::kOther, "off_node", 200);
  EXPECT_EQ(obs::current_trace_node(), 0u);
  const auto evs = buf.events();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].node, 3u);
  EXPECT_EQ(evs[1].node, 0u);
  // The Chrome export maps node -> pid.
  const std::string json = obs::chrome_trace_json(buf);
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
  buf.clear();
}

TEST(TraceSpan, NestedSpansNestOverSimulatedTime) {
  hw::MachineConfig mc;
  mc.mem_kb = 16 * 1024;
  hw::Machine machine(mc);
  hw::Cpu& cpu = machine.cpu(0);

  obs::TraceBuffer& buf = obs::trace_buffer();
  buf.set_enabled(true);
  buf.clear();
  {
    obs::TraceSpan outer(cpu, obs::TraceCat::kSwitch, "outer");
    cpu.charge(1000);
    {
      obs::TraceSpan inner(cpu, obs::TraceCat::kTransfer, "inner");
      cpu.charge(500);
    }
    cpu.charge(250);
  }
  const auto evs = buf.events();
  ASSERT_EQ(evs.size(), 2u);
  const obs::TraceEvent* outer = &evs[0];
  const obs::TraceEvent* inner = &evs[1];
  if (std::string(outer->name) != "outer") std::swap(outer, inner);
  EXPECT_STREQ(outer->name, "outer");
  EXPECT_STREQ(inner->name, "inner");
  // Proper nesting: inner entirely inside outer, durations in cycles.
  EXPECT_GE(inner->begin, outer->begin);
  EXPECT_LE(inner->end, outer->end);
  EXPECT_EQ(inner->end - inner->begin, 500u);
  EXPECT_EQ(outer->end - outer->begin, 1750u);
  buf.clear();
}

TEST(JsonExport, MetricsJsonIsWellFormedAndCarriesSchema) {
  obs::registry().counter("test.obs.json \"quoted\"\\name").inc();
  obs::registry().histogram("test.obs.json_hist").record(4096);
  obs::registry().gauge("test.obs.json_gauge").set(-0.25);
  const std::string json = obs::to_json(obs::snapshot());
  EXPECT_TRUE(JsonChecker(json).ok()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"schema\":\"mercury.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("test.obs.json_hist"), std::string::npos);
  // The quote and backslash in the instrument name must arrive escaped.
  EXPECT_NE(json.find("\\\"quoted\\\"\\\\name"), std::string::npos);
}

TEST(JsonExport, ChromeTraceIsWellFormedAndHasOurEvents) {
  obs::TraceBuffer buf(16);
  buf.record(obs::TraceEvent{"span_x", obs::TraceCat::kVmm, 2, 3000, 9000});
  buf.record_instant(1, obs::TraceCat::kSwitch, "mark_y", 4500);
  const std::string json = obs::chrome_trace_json(buf);
  EXPECT_TRUE(JsonChecker(json).ok()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"span_x\""), std::string::npos);
  EXPECT_NE(json.find("\"mark_y\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete event
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant event
  EXPECT_NE(json.find("\"vmm\""), std::string::npos);        // category name
}

// --- black box: flight recorder ---------------------------------------------

TEST(FlightRecorder, MergesRingsInGlobalEmissionOrder) {
  obs::FlightRecorder rec(8);
  rec.record(1, obs::FlightType::kPhaseBegin, "a", 100);
  rec.record(0, obs::FlightType::kPhaseBegin, "b", 50);
  rec.record(1, obs::FlightType::kPhaseEnd, "a", 200, 7, 100);
  const auto evs = rec.events();
  ASSERT_EQ(evs.size(), 3u);
  // Emission order, not per-CPU or per-clock order: cpu 1's event first.
  EXPECT_STREQ(evs[0].name, "a");
  EXPECT_STREQ(evs[1].name, "b");
  EXPECT_LT(evs[0].seq, evs[1].seq);
  EXPECT_LT(evs[1].seq, evs[2].seq);
  EXPECT_EQ(evs[2].arg0, 7u);
  EXPECT_EQ(evs[2].arg1, 100u);
}

TEST(FlightRecorder, OverwritesOldestAndCountsDrops) {
  obs::FlightRecorder rec(4);
  for (std::uint64_t i = 0; i < 10; ++i)
    rec.record(0, obs::FlightType::kRollbackStep, "step", 1000 + i, i);
  const auto evs = rec.events();
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  // Newest evidence survives: args 6..9.
  EXPECT_EQ(evs.front().arg0, 6u);
  EXPECT_EQ(evs.back().arg0, 9u);
}

TEST(FlightRecorder, TailReturnsNewestAcrossCpus) {
  obs::FlightRecorder rec(8);
  for (std::uint64_t i = 0; i < 6; ++i)
    rec.record(i % 2, obs::FlightType::kCrewGrab, "g", 10 * i, i);
  const auto tail = rec.tail(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].arg0, 3u);
  EXPECT_EQ(tail[2].arg0, 5u);
  // A tail longer than the recording is just everything.
  EXPECT_EQ(rec.tail(100).size(), 6u);
}

TEST(FlightRecorder, SeqStaysMonotonicAcrossClear) {
  obs::FlightRecorder rec(4);
  rec.record(0, obs::FlightType::kPhaseBegin, "a", 1);
  const std::uint64_t first_seq = rec.events()[0].seq;
  rec.clear();
  EXPECT_TRUE(rec.events().empty());
  EXPECT_EQ(rec.recorded(), 0u);
  rec.record(0, obs::FlightType::kPhaseBegin, "b", 2);
  // Exports from before and after a clear() must still order correctly.
  EXPECT_GT(rec.events()[0].seq, first_seq);
}

TEST(FlightRecorder, DisabledRecordsNothing) {
  obs::FlightRecorder rec(4);
  rec.set_enabled(false);
  rec.record(0, obs::FlightType::kFaultHit, "f", 1);
  EXPECT_TRUE(rec.events().empty());
  EXPECT_EQ(rec.recorded(), 0u);
}

TEST(FlightRecorder, EventsJsonIsWellFormed) {
  obs::FlightRecorder rec(8);
  rec.record(2, obs::FlightType::kFaultHit, "vmm.adopt_protect", 4500, 4, 0, 1);
  rec.record(0, obs::FlightType::kSloBreach, "switch.attach", 9000, 88, 11);
  const std::string json = obs::flight_events_json(rec.events());
  EXPECT_TRUE(JsonChecker(json).ok()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"fault.hit\""), std::string::npos);
  EXPECT_NE(json.find("\"slo.breach\""), std::string::npos);
  EXPECT_NE(json.find("vmm.adopt_protect"), std::string::npos);
  EXPECT_NE(json.find("[88,11,0]"), std::string::npos);
}

TEST(FlightMacro, RecordsIffObsEnabled) {
  hw::MachineConfig mc;
  mc.mem_kb = 16 * 1024;
  hw::Machine machine(mc);
  hw::Cpu& cpu = machine.cpu(0);

  obs::FlightRecorder& rec = obs::flight_recorder();
  rec.clear();
  const hw::Cycles before_clock = cpu.now();
  MERC_FLIGHT(cpu, kPhaseBegin, "test.flight.macro", 42);
#if MERCURY_OBS_ENABLED
  const auto evs = rec.events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_STREQ(evs[0].name, "test.flight.macro");
  EXPECT_EQ(evs[0].cpu, 0u);
  EXPECT_EQ(evs[0].arg0, 42u);
#else
  // The macro must compile away entirely: nothing recorded.
  EXPECT_TRUE(rec.events().empty());
#endif
  // Instrumentation never charges simulated time.
  EXPECT_EQ(cpu.now(), before_clock);
  rec.clear();
}

// --- engine profiler ---------------------------------------------------------

// The profiler is process-global and bucket addresses are stable across
// reset(), so these tests look their buckets up by name and never assert on
// the total bucket count (other suites in this binary create buckets too).
namespace {
const obs::ProfBucket* find_bucket(const std::vector<obs::ProfBucket>& snap,
                                   const std::string& name) {
  for (const auto& b : snap)
    if (b.name == name) return &b;
  return nullptr;
}
}  // namespace

TEST(EngineProfiler, DisabledRecordsNothingAndScopesAreCheap) {
  obs::EngineProfiler& prof = obs::profiler();
  prof.set_enabled(false);
  prof.reset();
  hw::MachineConfig mc;
  mc.mem_kb = 16 * 1024;
  hw::Machine machine(mc);
  {
    MERC_PROF_SCOPE("test.prof.disabled", &machine.cpu(0));
    machine.cpu(0).charge(100);
  }
  // The call-site static may have created the bucket, but a disabled
  // profiler must not charge it.
  const std::vector<obs::ProfBucket> snap = prof.snapshot();
  const obs::ProfBucket* b = find_bucket(snap, "test.prof.disabled");
  if (b != nullptr) {
    EXPECT_EQ(b->count, 0u);
    EXPECT_EQ(b->wall_ns, 0u);
    EXPECT_EQ(b->sim_cycles, 0u);
  }
}

TEST(EngineProfiler, EnabledAttributesWallAndSimTime) {
  obs::EngineProfiler& prof = obs::profiler();
  prof.reset();
  prof.set_enabled(true);
  hw::MachineConfig mc;
  mc.mem_kb = 16 * 1024;
  hw::Machine machine(mc);
  hw::Cpu& cpu = machine.cpu(0);
  for (int i = 0; i < 3; ++i) {
    MERC_PROF_SCOPE("test.prof.bucket", &cpu);
    cpu.charge(500);
  }
  const auto snap = prof.snapshot();
  prof.set_enabled(false);
#if MERCURY_OBS_ENABLED
  const obs::ProfBucket* b = find_bucket(snap, "test.prof.bucket");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->count, 3u);
  EXPECT_EQ(b->sim_cycles, 1500u);
  const std::string json = obs::profile_json();
  EXPECT_TRUE(JsonChecker(json).ok()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"schema\":\"mercury.profile.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("test.prof.bucket"), std::string::npos);
#else
  // MERC_PROF_SCOPE compiles away entirely under MERCURY_OBS=OFF.
  EXPECT_EQ(find_bucket(snap, "test.prof.bucket"), nullptr);
#endif
  prof.reset();
}

// --- time-series sampler -----------------------------------------------------

TEST(TimeSeriesSampler, SamplesOnDemandAndSerializes) {
  obs::TimeSeriesSampler sampler(8);
  double v = 1.0;
  sampler.add_series("test.ts.live", "node=n0", [&] { return v; });
  sampler.sample(100);
  v = 2.5;
  sampler.sample(200);
  ASSERT_EQ(sampler.series_count(), 1u);
  const auto pts = sampler.points(0);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].t, 100u);
  EXPECT_DOUBLE_EQ(pts[0].v, 1.0);
  EXPECT_DOUBLE_EQ(pts[1].v, 2.5);
  const std::string json = sampler.to_json(100);
  EXPECT_TRUE(JsonChecker(json).ok()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"schema\":\"mercury.timeseries.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("test.ts.live"), std::string::npos);
  EXPECT_NE(json.find("node=n0"), std::string::npos);
}

TEST(TimeSeriesSampler, RingDropsOldestPastCapacity) {
  obs::TimeSeriesSampler sampler(4);
  double v = 0.0;
  sampler.add_series("test.ts.ring", "", [&] { return v; });
  for (int i = 0; i < 10; ++i) {
    v = i;
    sampler.sample(static_cast<hw::Cycles>(1000 + i));
  }
  const auto pts = sampler.points(0);
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_EQ(pts.front().t, 1006u);  // oldest six dropped
  EXPECT_DOUBLE_EQ(pts.back().v, 9.0);
  EXPECT_EQ(sampler.dropped(), 6u);
  EXPECT_EQ(sampler.samples_taken(), 10u);
}

// --- SLO watchdog ------------------------------------------------------------

TEST(SloWatchdog, FlagsOnlyBudgetExceedances) {
  obs::SloWatchdog dog;
  dog.set_budget("test.slo.phase", 1000);
  EXPECT_EQ(dog.budget("test.slo.phase"), 1000u);
  EXPECT_FALSE(dog.observe("test.slo.phase", 1000, 0, 5000));  // at budget: ok
  EXPECT_EQ(dog.breaches(), 0u);
  EXPECT_TRUE(dog.observe("test.slo.phase", 1001, 0, 6000));
  EXPECT_EQ(dog.breaches(), 1u);
  // Unlimited (0) and unknown phases never breach.
  dog.set_budget("test.slo.unlimited", 0);
  EXPECT_FALSE(dog.observe("test.slo.unlimited", 1u << 30, 0, 7000));
  EXPECT_FALSE(dog.observe("test.slo.never_declared", 1u << 30, 0, 8000));
  EXPECT_EQ(dog.breaches(), 1u);
}

TEST(SloWatchdog, RedeclaringABudgetReplacesIt) {
  obs::SloWatchdog dog;
  dog.set_budget("test.slo.phase2", 100);
  dog.set_budget("test.slo.phase2", 10000);
  EXPECT_EQ(dog.budget("test.slo.phase2"), 10000u);
  EXPECT_FALSE(dog.observe("test.slo.phase2", 500, 0, 0));
}

// --- postmortem bundles ------------------------------------------------------

TEST(Postmortem, JsonIsWellFormedAndCarriesContext) {
  obs::PostmortemContext ctx;
  ctx.reason = "fault-rollback";
  ctx.detail = "unit test \"quoted\" detail";
  ctx.switch_from = "native";
  ctx.switch_target = "partial-virtual";
  ctx.has_fault = true;
  ctx.fault_site = "vmm.adopt_protect";
  ctx.fault_kind = "fail";
  ctx.fault_cpu = 2;
  ctx.active_refs = 0;
  ctx.cpu_clocks = {{0, 9000}, {1, 9000}};
  ctx.extra = {{"page_info.shard_count", 8}};

  const std::string json = obs::postmortem_json(ctx);
  EXPECT_TRUE(JsonChecker(json).ok()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"schema\":\"mercury.postmortem.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"fault-rollback\""), std::string::npos);
  EXPECT_NE(json.find("vmm.adopt_protect"), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);  // escaped detail
  EXPECT_NE(json.find("\"mercury.metrics.v1\""), std::string::npos);  // embed
  EXPECT_NE(json.find("page_info.shard_count"), std::string::npos);
}

TEST(Postmortem, OmitsFaultSectionWhenNoFault) {
  obs::PostmortemContext ctx;
  ctx.reason = "assert";
  const std::string json = obs::postmortem_json(ctx);
  EXPECT_TRUE(JsonChecker(json).ok());
  EXPECT_EQ(json.find("\"fault\""), std::string::npos);
}

TEST(Postmortem, WriteRotatesSlotsAndBumpsCount) {
  obs::set_postmortem_dir(::testing::TempDir());
  obs::PostmortemContext ctx;
  ctx.reason = "assert";
  ctx.detail = "slot rotation test";

  const std::uint64_t before = obs::postmortem_count();
  const std::string p1 = obs::write_postmortem(ctx);
  const std::string p2 = obs::write_postmortem(ctx);
  obs::set_postmortem_dir("");

  ASSERT_FALSE(p1.empty());
  ASSERT_FALSE(p2.empty());
  EXPECT_NE(p1, p2);  // consecutive dumps land in different slots
  EXPECT_EQ(obs::postmortem_count(), before + 2);
  EXPECT_EQ(obs::last_postmortem_path(), p2);
  EXPECT_NE(p1.find("mercury-postmortem-"), std::string::npos);

  // The file on disk is the serialized bundle.
  std::FILE* f = std::fopen(p2.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
  std::fclose(f);
  EXPECT_TRUE(JsonChecker(content).ok());
  EXPECT_NE(content.find("slot rotation test"), std::string::npos);
}

// --- pause observatory -------------------------------------------------------

TEST(HistogramTail, QuantileOneReturnsLargestRecordedBucketBound) {
  util::Histogram h;
  h.add(100);
  h.add(5000);
  // The tail query is a bucket upper bound: at least the max sample, and
  // monotone in q.
  EXPECT_GE(h.quantile(1.0), 5000u);
  EXPECT_GE(h.quantile(1.0), h.quantile(0.5));
  EXPECT_GE(h.quantile(0.5), h.quantile(0.0));
}

TEST(HistogramTail, EmptyHistogramReturnsZeroForEveryQuantile) {
  util::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  for (double q : {0.0, 0.5, 0.99, 1.0}) EXPECT_EQ(h.quantile(q), 0u);
}

TEST(HistogramTail, MergeFoldsSamplesIn) {
  util::Histogram a, b;
  a.add(100);
  b.add(70000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_GE(a.quantile(1.0), 70000u);
}

TEST(PauseLedger, QuantileAtOneIsExactMaxNotBucketBound) {
  obs::PauseLedger pl;
  pl.record(obs::PauseCause::kRendezvousParked, 0, 1000, 8777);
  // Span 7777: the log2 bucket bound would be 8191, but q >= 1.0 must
  // return the exact recorded max — worst-case numbers must not round.
  EXPECT_EQ(pl.quantile(obs::PauseCause::kRendezvousParked, 1.0), 7777u);
  EXPECT_EQ(pl.quantile(obs::PauseCause::kRendezvousParked, 2.0), 7777u);
  // Below 1.0 the bucket bound applies (and may exceed the exact max).
  EXPECT_GE(pl.quantile(obs::PauseCause::kRendezvousParked, 0.99), 7777u);
}

TEST(PauseLedger, EmptyLedgerEdgeCases) {
  obs::PauseLedger pl;
  EXPECT_EQ(pl.intervals(), 0u);
  EXPECT_EQ(pl.quantile(obs::PauseCause::kTlbShootdown, 0.5), 0u);
  EXPECT_EQ(pl.quantile(obs::PauseCause::kTlbShootdown, 1.0), 0u);
  EXPECT_EQ(pl.cpu_total(99), 0u);
  EXPECT_FALSE(pl.worst().valid);
  const std::string json = pl.to_json();
  EXPECT_TRUE(JsonChecker(json).ok()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"mercury.pause.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"none\""), std::string::npos);  // worst-cause sentinel
}

TEST(PauseLedger, WorstSurvivesClearButNotReset) {
  obs::PauseLedger pl;
  pl.record(obs::PauseCause::kRollbackUnwind, 1, 0, 90000, "big");
  pl.clear();
  EXPECT_EQ(pl.intervals(), 0u);  // distributions dropped...
  ASSERT_TRUE(pl.worst().valid);  // ...but the run's worst interval is kept
  EXPECT_EQ(pl.worst().span(), 90000u);
  pl.record(obs::PauseCause::kCrewShardWork, 0, 0, 100);
  EXPECT_EQ(pl.worst().span(), 90000u);  // a smaller pause can't displace it
  EXPECT_EQ(pl.worst().cause, obs::PauseCause::kRollbackUnwind);
  pl.reset();
  EXPECT_FALSE(pl.worst().valid);
}

TEST(PauseLedger, WorstTracksLargestSpanAcrossCauses) {
  obs::PauseLedger pl;
  pl.record(obs::PauseCause::kRendezvousParked, 0, 0, 500);
  pl.record(obs::PauseCause::kTlbShootdown, 2, 1000, 4000, "flush");
  pl.record(obs::PauseCause::kCrewShardWork, 1, 0, 2000);
  ASSERT_TRUE(pl.worst().valid);
  EXPECT_EQ(pl.worst().cause, obs::PauseCause::kTlbShootdown);
  EXPECT_EQ(pl.worst().cpu, 2u);
  EXPECT_EQ(pl.worst().span(), 3000u);
}

TEST(PauseLedger, BeginEndPairingAndOrphansAreUnattributed) {
  obs::PauseLedger pl;
  pl.begin_interval(obs::PauseCause::kHypercallEmulation, 0, 100);
  pl.end_interval(0, 400);
  EXPECT_EQ(pl.intervals(), 1u);
  EXPECT_EQ(pl.count(obs::PauseCause::kHypercallEmulation), 1u);
  EXPECT_EQ(pl.total(obs::PauseCause::kHypercallEmulation), 300u);
  EXPECT_EQ(pl.unattributed(), 0u);
  // An end with no begin is an orphaned half.
  pl.end_interval(3, 500);
  EXPECT_EQ(pl.unattributed(), 1u);
  // A begin over a still-open slot orphans the earlier begin.
  pl.begin_interval(obs::PauseCause::kHypercallEmulation, 1, 100);
  pl.begin_interval(obs::PauseCause::kHypercallEmulation, 1, 200);
  EXPECT_EQ(pl.unattributed(), 2u);
  pl.end_interval(1, 300);  // pairs with the re-opened slot
  EXPECT_EQ(pl.intervals(), 2u);
  EXPECT_EQ(pl.unattributed(), 2u);
}

TEST(PauseLedger, InvertedIntervalClampsToZeroSpan) {
  obs::PauseLedger pl;
  pl.record(obs::PauseCause::kRendezvousParked, 0, 900, 100);
  EXPECT_EQ(pl.count(obs::PauseCause::kRendezvousParked), 1u);
  EXPECT_EQ(pl.total(obs::PauseCause::kRendezvousParked), 0u);
}

TEST(PauseLedger, MergeFoldsCountsCpuTotalsAndWorst) {
  obs::PauseLedger a;
  obs::PauseLedger b;
  a.record(obs::PauseCause::kRendezvousParked, 0, 0, 1000);
  b.record(obs::PauseCause::kRendezvousParked, 0, 0, 7000);
  b.record(obs::PauseCause::kTlbShootdown, 3, 0, 50);
  b.end_interval(1, 5);  // one unattributed half stays b's
  a.merge(b);
  EXPECT_EQ(a.intervals(), 3u);
  EXPECT_EQ(a.count(obs::PauseCause::kRendezvousParked), 2u);
  EXPECT_EQ(a.cpu_total(0), 8000u);
  EXPECT_EQ(a.cpu_total(3), 50u);
  EXPECT_EQ(a.unattributed(), 1u);
  ASSERT_TRUE(a.worst().valid);
  EXPECT_EQ(a.worst().span(), 7000u);  // b's worst displaced a's
  // The exact max folds through the moments merge, not the bucket bound.
  EXPECT_EQ(a.quantile(obs::PauseCause::kRendezvousParked, 1.0), 7000u);
}

TEST(PauseLedger, ScopeInstallsAndRestoresAmbientLedger) {
  obs::PauseLedger local;
  const std::uint64_t global_before = obs::pause_ledger().intervals();
  {
    obs::PauseLedgerScope scope(local);
    EXPECT_EQ(&obs::pause_ledger(), &local);
    MERC_PAUSE(kRendezvousParked, 0, 100, 300, "scoped");
  }
  EXPECT_NE(&obs::pause_ledger(), &local);
  EXPECT_EQ(obs::pause_ledger().intervals(), global_before);
#if MERCURY_OBS_ENABLED
  EXPECT_EQ(local.intervals(), 1u);
  EXPECT_EQ(local.total(obs::PauseCause::kRendezvousParked), 200u);
#else
  EXPECT_EQ(local.intervals(), 0u);  // the macro compiled away
#endif
}

TEST(PauseLedger, JsonCarriesAllCausesAndWorst) {
  obs::PauseLedger pl;
  pl.record(obs::PauseCause::kSupervisorRetryBackoff, 0, 0, 4000, "backoff");
  const std::string json = pl.to_json();
  EXPECT_TRUE(JsonChecker(json).ok()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"schema\":\"mercury.pause.v1\""), std::string::npos);
  // Silent causes still appear in the attribution table.
  EXPECT_NE(json.find("\"rendezvous-parked\""), std::string::npos);
  EXPECT_NE(json.find("\"supervisor-retry-backoff\""), std::string::npos);
  EXPECT_NE(json.find("\"unattributed\":0"), std::string::npos);
  EXPECT_NE(json.find("\"flight\""), std::string::npos);
}

TEST(SummaryTable, RendersCountersAndHistograms) {
  obs::registry().counter("test.obs.table_counter").inc(5);
  obs::registry().histogram("test.obs.table_hist").record(1234);
  const std::string table = obs::summary_table(obs::snapshot());
  EXPECT_NE(table.find("test.obs.table_counter"), std::string::npos);
  EXPECT_NE(table.find("test.obs.table_hist"), std::string::npos);
}

}  // namespace
}  // namespace mercury::testing
