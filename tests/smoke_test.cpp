// End-to-end smoke: boot each of the six evaluated systems on a small
// machine, run processes, and exercise a Mercury mode-switch round trip.
#include <gtest/gtest.h>

#include "core/mercury.hpp"
#include "kernel/syscalls.hpp"
#include "workloads/configs.hpp"
#include "workloads/lmbench.hpp"

namespace mercury {
namespace {

using kernel::Sub;
using kernel::Sys;
using workloads::Sut;
using workloads::SutParams;
using workloads::SystemId;

SutParams small_params(std::size_t cpus = 1) {
  SutParams p;
  p.cpus = cpus;
  p.machine_mem_kb = 256 * 1024;  // 256 MB box
  p.kernel_mem_kb = 96 * 1024;
  p.domu_mem_kb = 64 * 1024;
  return p;
}

TEST(Smoke, AllSixSystemsBootAndRunAProcess) {
  for (const SystemId id : workloads::kAllSystems) {
    SutParams p = small_params();
    auto sut = Sut::create(id, p);
    SCOPED_TRACE(sut->label());

    bool done = false;
    sut->kernel().spawn("hello", [&done](Sys& s) -> Sub<void> {
      co_await s.compute_us(100.0);
      const hw::VirtAddr va = s.mmap(16 * hw::kPageSize, true);
      s.touch_pages(va, 16, true);
      s.munmap(va, 16 * hw::kPageSize);
      done = true;
    });
    EXPECT_TRUE(sut->kernel().run_until([&] { return done; },
                                        1000 * hw::kCyclesPerMillisecond));
    EXPECT_TRUE(done);
    if (auto* hv = sut->hypervisor()) {
      for (std::size_t d = 0; d < hv->num_domains(); ++d) {
        // No domain may have crashed during boot/run.
      }
      EXPECT_EQ(hv->stats().domains_crashed, 0u);
    }
  }
}

TEST(Smoke, MercurySwitchRoundTrip) {
  hw::MachineConfig mc;
  mc.mem_kb = 256 * 1024;
  hw::Machine machine(mc);
  core::MercuryConfig cfg;
  cfg.kernel_frames = (96 * 1024 * 1024ull) / hw::kPageSize;
  core::Mercury mercury(machine, cfg);

  EXPECT_EQ(mercury.mode(), core::ExecMode::kNative);
  ASSERT_TRUE(mercury.switch_to(core::ExecMode::kPartialVirtual));
  EXPECT_EQ(mercury.mode(), core::ExecMode::kPartialVirtual);
  EXPECT_TRUE(mercury.hypervisor().active());
  ASSERT_TRUE(mercury.switch_to(core::ExecMode::kNative));
  EXPECT_EQ(mercury.mode(), core::ExecMode::kNative);
  EXPECT_FALSE(mercury.hypervisor().active());

  const auto& st = mercury.engine().stats();
  EXPECT_EQ(st.attaches, 1u);
  EXPECT_EQ(st.detaches, 1u);
  EXPECT_GT(st.last_attach_cycles, 0u);
  EXPECT_GT(st.last_detach_cycles, 0u);
  // Attach rebuilds the page-info table; detach drops it — attach must
  // dominate (paper §7.4).
  EXPECT_GT(st.last_attach_cycles, st.last_detach_cycles);
}

TEST(Smoke, ForkLatencyOrderingAcrossModes) {
  workloads::LmbenchParams lp;
  lp.fork_iters = 4;
  lp.proc_resident_pages = 100;

  auto nl = Sut::create(SystemId::kNL, small_params());
  auto x0 = Sut::create(SystemId::kX0, small_params());
  const double nl_us = workloads::Lmbench::fork_latency(nl->kernel(), lp);
  const double x0_us = workloads::Lmbench::fork_latency(x0->kernel(), lp);
  EXPECT_GT(nl_us, 0.0);
  // Xen-style fork must be several times dearer than native.
  EXPECT_GT(x0_us, 2.0 * nl_us);
}

}  // namespace
}  // namespace mercury
