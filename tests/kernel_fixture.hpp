// Shared fixture: a small booted native kernel for kernel-layer tests.
#pragma once

#include <gtest/gtest.h>

#include <memory>

#include "hw/machine.hpp"
#include "kernel/fs/minifs.hpp"
#include "kernel/kernel.hpp"
#include "kernel/net/stack.hpp"
#include "kernel/syscalls.hpp"
#include "pv/direct_ops.hpp"

namespace mercury::testing {

/// A freestanding small native-kernel environment (instantiable anywhere).
struct MiniKernel {
  explicit MiniKernel(std::size_t cpus = 1, std::size_t mem_mb = 64) {
    hw::MachineConfig mc;
    mc.num_cpus = cpus;
    mc.mem_kb = mem_mb * 1024;
    machine = std::make_unique<hw::Machine>(mc);
    machine->nic().bind_irq(&machine->interrupts(), 0);
    ops = std::make_unique<pv::DirectOps>(*machine);
    k = std::make_unique<kernel::Kernel>(*machine, *ops, "test-kernel");
    hw::Pfn first = 0;
    const std::size_t frames = (mem_mb - 8) * 256;  // leave headroom
    if (!machine->frames().alloc_contiguous(frames, first))
      throw std::runtime_error("test machine too small");
    k->boot(first, frames);
    machine->install_trap_sink(k.get());
  }

  /// Run a body as a task to completion; returns false on budget exhaustion.
  bool run_task(kernel::ProcMain body,
                hw::Cycles budget = 30ull * 1000 * hw::kCyclesPerMillisecond) {
    bool done = false;
    k->spawn("t", [&done, body = std::move(body)](kernel::Sys& s)
                 -> kernel::Sub<void> {
      co_await body(s);
      done = true;
    });
    return k->run_until([&] { return done; }, budget);
  }

  std::unique_ptr<hw::Machine> machine;
  std::unique_ptr<pv::DirectOps> ops;
  std::unique_ptr<kernel::Kernel> k;
};

class KernelFixture : public ::testing::Test {
 protected:
  explicit KernelFixture(std::size_t cpus = 1, std::size_t mem_mb = 64)
      : env_(cpus, mem_mb), machine(env_.machine), k(env_.k) {}

  bool run_task(kernel::ProcMain body,
                hw::Cycles budget = 30ull * 1000 * hw::kCyclesPerMillisecond) {
    return env_.run_task(std::move(body), budget);
  }

  MiniKernel env_;
  std::unique_ptr<hw::Machine>& machine;
  std::unique_ptr<kernel::Kernel>& k;
};

class SmpKernelFixture : public KernelFixture {
 protected:
  SmpKernelFixture() : KernelFixture(2) {}
};

}  // namespace mercury::testing
