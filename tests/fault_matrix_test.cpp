// Deterministic fault matrix for the mode-switch path: every injection site
// × switch direction × trigger depth either commits cleanly (the site was
// never reached) or rolls back to the pre-switch mode — and in both cases
// the machine-state invariant checker finds nothing and the OS keeps
// running. A clean retry after every rollback must then commit.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "core/fault_inject.hpp"
#include "core/invariants.hpp"
#include "core/mercury.hpp"
#include "core/switch_supervisor.hpp"
#include "kernel/syscalls.hpp"
#include "obs/obs.hpp"
#include "obs/postmortem.hpp"
#include "tests/json_checker.hpp"

namespace mercury::testing {
namespace {

using core::ExecMode;
using core::FaultInjector;
using core::FaultKind;
using core::FaultPlan;
using core::FaultSite;
using core::Mercury;
using kernel::Sub;
using kernel::Sys;

/// Disarm (and stop any storm) on scope exit so one trial can never leak a
/// fault regime into the next. Also routes postmortem bundles into the test
/// temp dir (instead of the working directory) and restores the default on
/// exit — and reports how many plans this scope armed without ever firing:
/// a sweep whose plans all miss is asserting much less than it looks like.
struct InjectorGuard {
  std::uint64_t arms_before;
  std::uint64_t unfired_before;

  InjectorGuard()
      : arms_before(core::fault_injector().arms()),
        unfired_before(core::fault_injector().unfired_disarms()) {
    obs::set_postmortem_dir(::testing::TempDir());
  }
  ~InjectorGuard() {
    FaultInjector& fi = core::fault_injector();
    fi.disarm();
    fi.stop_storm();
    const std::uint64_t armed = fi.arms() - arms_before;
    const std::uint64_t unfired = fi.unfired_disarms() - unfired_before;
    if (unfired > 0) {
      std::printf("[ INJECTOR ] %llu of %llu armed plan(s) never fired\n",
                  static_cast<unsigned long long>(unfired),
                  static_cast<unsigned long long>(armed));
      ::testing::Test::RecordProperty("unfired_fault_plans",
                                      std::to_string(unfired));
    }
    obs::set_postmortem_dir("");
  }
};

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
  std::fclose(f);
  return content;
}

/// Parse the unsigned integer following `key` at/after `from` in raw JSON
/// text; npos-safe. Returns UINT64_MAX when the key is absent.
std::uint64_t json_uint_after(const std::string& json, const std::string& key,
                              std::size_t from = 0) {
  const std::size_t k = json.find(key, from);
  if (k == std::string::npos) return ~0ull;
  return std::stoull(json.substr(k + key.size()));
}

/// Every fired fault must leave a readable black box behind: a well-formed
/// mercury.postmortem.v1 bundle naming the faulting site and — in obs-on
/// builds — whose flight tail ends in the fault.hit event of the executing
/// CPU.
void expect_postmortem_bundle(const core::FaultPlan& plan,
                              const std::string& ctx) {
  const std::string path = obs::last_postmortem_path();
  ASSERT_FALSE(path.empty()) << ctx << ": rollback wrote no postmortem";
  const std::string json = read_file(path);
  ASSERT_FALSE(json.empty()) << ctx << ": cannot read " << path;
  EXPECT_TRUE(JsonChecker(json).ok())
      << ctx << ": bundle is not valid JSON: " << json.substr(0, 300);
  EXPECT_NE(json.find("\"schema\":\"mercury.postmortem.v1\""),
            std::string::npos)
      << ctx;
  EXPECT_NE(json.find("\"reason\":\"fault-rollback\""), std::string::npos)
      << ctx;

  // The fault section names site, kind, and the executing CPU.
  const std::string fault_anchor =
      std::string("\"fault\":{\"site\":\"") + core::fault_site_name(plan.site) +
      "\",\"kind\":\"" + core::fault_kind_name(plan.kind) + "\",\"cpu\":";
  const std::size_t fault_pos = json.find(fault_anchor);
  ASSERT_NE(fault_pos, std::string::npos)
      << ctx << ": fault section missing or wrong: " << fault_anchor;
  const std::uint64_t fault_cpu =
      std::stoull(json.substr(fault_pos + fault_anchor.size()));

#if MERCURY_OBS_ENABLED
  // The flight tail must contain the fault.hit event for this site, emitted
  // by the same CPU the bundle blames. Event layout is fixed
  // ({"seq":..,"cpu":..,...,"type":..,"name":..}), so walk back from the
  // type/name match to this event's own cpu field.
  const std::string hit_anchor = std::string("\"type\":\"fault.hit\",\"name\":\"") +
                                 core::fault_site_name(plan.site) + "\"";
  const std::size_t hit_pos = json.rfind(hit_anchor);
  ASSERT_NE(hit_pos, std::string::npos)
      << ctx << ": flight tail lacks the fault.hit event";
  const std::size_t ev_start = json.rfind("{\"seq\":", hit_pos);
  ASSERT_NE(ev_start, std::string::npos) << ctx;
  EXPECT_EQ(json_uint_after(json, "\"cpu\":", ev_start), fault_cpu)
      << ctx << ": flight event CPU disagrees with the fault section";
  // The unwind itself is on the record too.
  EXPECT_NE(json.find("\"type\":\"rollback.step\""), std::string::npos) << ctx;
#else
  // Obs-off builds still dump bundles; the flight tail is just empty.
  EXPECT_NE(json.find("\"events\":[]"), std::string::npos) << ctx;
  (void)fault_cpu;
#endif
}

struct Box {
  hw::Machine machine;
  Mercury m;
  long progress = 0;

  explicit Box(core::SwitchConfig sc = {}, std::size_t cpus = 1)
      : machine([&] {
          hw::MachineConfig mc;
          mc.num_cpus = cpus;
          mc.mem_kb = 96 * 1024;
          return mc;
        }()),
        m(machine, [&] {
          core::MercuryConfig cfg;
          cfg.kernel_frames = (32ull * 1024 * 1024) / hw::kPageSize;
          cfg.switch_config = sc;
          return cfg;
        }()) {
    // A small workload so the switch path has address spaces to protect,
    // saved contexts to fix up, and something that must survive a rollback.
    for (int i = 0; i < 3; ++i) {
      m.kernel().spawn("load" + std::to_string(i), [this](Sys& s) -> Sub<void> {
        const auto va = s.mmap(8 * hw::kPageSize, true);
        for (;;) {
          s.touch_pages(va, 8, true);
          co_await s.compute_us(40.0);
          ++progress;
        }
      });
    }
    m.kernel().run_for(2 * hw::kCyclesPerMillisecond);
  }

  /// Drive one switch request to quiescence; true if it went idle in budget.
  bool settle(ExecMode target) {
    m.engine().request(target);
    return m.kernel().run_until([&] { return m.engine().idle(); },
                                300 * hw::kCyclesPerMillisecond);
  }

  void expect_consistent(const std::string& ctx) {
    const core::InvariantReport report =
        core::check_machine_invariants(m.engine());
    EXPECT_TRUE(report.ok()) << ctx << ":\n" << report.to_string();
  }

  void expect_os_runs(const std::string& ctx) {
    const long before = progress;
    m.kernel().run_for(3 * hw::kCyclesPerMillisecond);
    EXPECT_GT(progress, before) << ctx << ": workload stopped making progress";
  }
};

/// Arm `plan`, request `from`→`target`, and verify the dichotomy: either the
/// fault fired and the engine rolled back to `from`, or the site was never
/// reached and the switch committed — with zero invariant violations and a
/// live OS either way. Returns true if the fault fired.
bool run_faulted_switch(Box& box, ExecMode from, ExecMode target,
                        const FaultPlan& plan, const std::string& ctx) {
  FaultInjector& fi = core::fault_injector();
  EXPECT_EQ(box.m.mode(), from) << ctx;
  const std::uint64_t injected_before = fi.injected();
  const std::uint64_t rollbacks_before = box.m.engine().stats().rollbacks;
  const std::uint64_t bundles_before = obs::postmortem_count();

  fi.arm(plan);
  EXPECT_TRUE(box.settle(target)) << ctx << ": engine never went idle";
  fi.disarm();

  const bool fired = fi.injected() > injected_before;
  if (fired) {
    EXPECT_EQ(box.m.mode(), from) << ctx << ": faulted switch changed mode";
    EXPECT_EQ(box.m.engine().stats().rollbacks, rollbacks_before + 1) << ctx;
    EXPECT_GT(obs::postmortem_count(), bundles_before)
        << ctx << ": rollback produced no postmortem bundle";
    expect_postmortem_bundle(plan, ctx);
  } else {
    EXPECT_EQ(obs::postmortem_count(), bundles_before)
        << ctx << ": a clean commit wrote a postmortem bundle";
    EXPECT_EQ(box.m.mode(), target) << ctx << ": unreached site blocked commit";
    EXPECT_EQ(box.m.engine().stats().rollbacks, rollbacks_before) << ctx;
  }
  box.expect_consistent(ctx + (fired ? " post-rollback" : " post-commit"));
  box.expect_os_runs(ctx);

  if (fired) {
    // The dependable-switch promise: a rollback is recoverable, not sticky.
    EXPECT_TRUE(box.settle(target)) << ctx << ": clean retry stuck";
    EXPECT_EQ(box.m.mode(), target) << ctx << ": clean retry did not commit";
    box.expect_consistent(ctx + " post-retry");
  }
  // Return to `from` for the next trial.
  EXPECT_TRUE(box.settle(from)) << ctx;
  EXPECT_EQ(box.m.mode(), from) << ctx;
  box.expect_consistent(ctx + " post-restore");
  return fired;
}

const FaultSite kAllSites[] = {
    FaultSite::kRendezvous,      FaultSite::kAdoptRebuild,
    FaultSite::kAdoptProtect,    FaultSite::kStackFixup,
    FaultSite::kTransferBindings, FaultSite::kReleaseUnprotect,
    FaultSite::kReloadHwState,
};

std::string ctx_of(FaultSite site, ExecMode from, ExecMode target,
                   std::uint64_t trigger) {
  return std::string(core::fault_site_name(site)) + " " +
         core::exec_mode_name(from) + "->" + core::exec_mode_name(target) +
         " trigger=" + std::to_string(trigger);
}

void sweep(Box& box, ExecMode virt_mode, std::size_t* fired_count) {
  for (const FaultSite site : kAllSites) {
    for (const std::uint64_t trigger : {std::uint64_t{1}, std::uint64_t{3}}) {
      FaultPlan plan;
      plan.site = site;
      plan.trigger_count = trigger;
      plan.kind = site == FaultSite::kStackFixup ? FaultKind::kCorruptFrame
                                                 : FaultKind::kFail;
      {
        // Attach direction (native -> virtual).
        const std::string ctx =
            ctx_of(site, ExecMode::kNative, virt_mode, trigger);
        SCOPED_TRACE(ctx);
        if (run_faulted_switch(box, ExecMode::kNative, virt_mode, plan, ctx))
          ++*fired_count;
        if (::testing::Test::HasFatalFailure()) return;
      }
      {
        // Detach direction (virtual -> native): enter virtual cleanly first.
        ASSERT_TRUE(box.settle(virt_mode));
        const std::string ctx =
            ctx_of(site, virt_mode, ExecMode::kNative, trigger);
        SCOPED_TRACE(ctx);
        if (run_faulted_switch(box, virt_mode, ExecMode::kNative, plan, ctx))
          ++*fired_count;
        if (::testing::Test::HasFatalFailure()) return;
        // run_faulted_switch left the box in `from` (virtual); the next
        // attach trial starts from native.
        ASSERT_TRUE(box.settle(ExecMode::kNative));
      }
    }
  }
}

TEST(FaultMatrix, LazyTrackingPartialVirtual) {
  InjectorGuard guard;
  Box box;
  std::size_t fired = 0;
  sweep(box, ExecMode::kPartialVirtual, &fired);
  // Lazy attach reaches rebuild/protect/bindings/reload; detach reaches
  // unprotect/bindings/reload; rendezvous fires in both directions.
  EXPECT_GE(fired, 8u);
}

TEST(FaultMatrix, LazyTrackingFullVirtual) {
  InjectorGuard guard;
  Box box;
  std::size_t fired = 0;
  sweep(box, ExecMode::kFullVirtual, &fired);
  EXPECT_GE(fired, 8u);
}

TEST(FaultMatrix, EagerTrackingAndEagerFixup) {
  InjectorGuard guard;
  core::SwitchConfig sc;
  sc.eager_page_tracking = true;
  sc.eager_selector_fixup = true;
  Box box(sc);
  std::size_t fired = 0;
  sweep(box, ExecMode::kPartialVirtual, &fired);
  // Eager tracking skips the rebuild but the fixup walk now faults too.
  EXPECT_GE(fired, 8u);
}

TEST(FaultMatrix, SmpRendezvousAndReload) {
  InjectorGuard guard;
  Box box({}, /*cpus=*/2);
  std::size_t fired = 0;
  // On SMP the reload loop has one site visit per CPU: trigger 2 lands on
  // the second CPU, leaving the first already reloaded — the rollback must
  // walk everyone back.
  for (const FaultSite site :
       {FaultSite::kRendezvous, FaultSite::kReloadHwState}) {
    for (const std::uint64_t trigger : {std::uint64_t{1}, std::uint64_t{2}}) {
      FaultPlan plan;
      plan.site = site;
      plan.trigger_count = trigger;
      const std::string ctx =
          ctx_of(site, ExecMode::kNative, ExecMode::kPartialVirtual, trigger);
      SCOPED_TRACE(ctx);
      if (run_faulted_switch(box, ExecMode::kNative, ExecMode::kPartialVirtual,
                             plan, ctx))
        ++fired;
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  EXPECT_GE(fired, 3u);
}

TEST(FaultMatrix, CrewWorkerShardFaults) {
  InjectorGuard guard;
  core::SwitchConfig sc;
  sc.crew_workers = 3;
  Box box(sc, /*cpus=*/4);
  std::size_t fired = 0;
  // Worker-side sites of the parallel switch pipeline: the fault fires on a
  // rendezvous-parked crew CPU mid-shard, not on the control processor. Deep
  // triggers land well inside a later shard (possibly a different worker);
  // the crew must abort, join, rethrow on the CP, and the rollback must
  // still converge in both directions.
  for (const FaultSite site :
       {FaultSite::kShardRebuild, FaultSite::kShardProtect,
        FaultSite::kShardUnprotect}) {
    for (const std::uint64_t trigger :
         {std::uint64_t{1}, std::uint64_t{7}, std::uint64_t{1000}}) {
      FaultPlan plan;
      plan.site = site;
      plan.trigger_count = trigger;
      {
        const std::string ctx =
            ctx_of(site, ExecMode::kNative, ExecMode::kPartialVirtual, trigger);
        SCOPED_TRACE(ctx);
        if (run_faulted_switch(box, ExecMode::kNative,
                               ExecMode::kPartialVirtual, plan, ctx))
          ++fired;
        if (::testing::Test::HasFatalFailure()) return;
      }
      {
        ASSERT_TRUE(box.settle(ExecMode::kPartialVirtual));
        const std::string ctx =
            ctx_of(site, ExecMode::kPartialVirtual, ExecMode::kNative, trigger);
        SCOPED_TRACE(ctx);
        if (run_faulted_switch(box, ExecMode::kPartialVirtual,
                               ExecMode::kNative, plan, ctx))
          ++fired;
        if (::testing::Test::HasFatalFailure()) return;
        ASSERT_TRUE(box.settle(ExecMode::kNative));
      }
    }
  }
  // Rebuild shards see one visit per frame (all three triggers fire on
  // attach); protect/unprotect shards see one per page table (~tens, so the
  // deep trigger commits untouched — exercising the unreached branch).
  EXPECT_GE(fired, 7u);
}

TEST(FaultMatrix, WarmReattachDirtyRebuildRows) {
  // kDirtyRebuild rows: fail / timeout / corrupt-frame, both directions.
  // The site lives on the warm-attach dirty-reconstruction loop, so the
  // attach direction must fire (the window is primed and dirtied before
  // every row) and roll back with the retained table intact — the clean
  // retry inside run_faulted_switch must go warm again, not degrade to a
  // cold rebuild. The detach direction never reaches the site; those rows
  // pin down the unreached half of the dichotomy.
  InjectorGuard guard;
  core::SwitchConfig sc;
  sc.warm_reattach = true;
  Box box(sc);
  // Prime: first (cold) attach, then a retaining detach opens the window.
  ASSERT_TRUE(box.settle(ExecMode::kPartialVirtual));
  ASSERT_TRUE(box.settle(ExecMode::kNative));
  std::size_t fired = 0;
  for (const FaultKind kind :
       {FaultKind::kFail, FaultKind::kTimeout, FaultKind::kCorruptFrame}) {
    for (const std::uint64_t trigger : {std::uint64_t{1}, std::uint64_t{5}}) {
      // Let the workload dirty the open window so the per-frame site has
      // visits to spend.
      box.m.kernel().run_for(2 * hw::kCyclesPerMillisecond);
      FaultPlan plan;
      plan.site = FaultSite::kDirtyRebuild;
      plan.kind = kind;
      plan.trigger_count = trigger;
      if (kind == FaultKind::kTimeout) plan.latency = hw::us_to_cycles(100.0);
      {
        const std::string ctx =
            std::string(core::fault_kind_name(kind)) + " " +
            ctx_of(plan.site, ExecMode::kNative, ExecMode::kPartialVirtual,
                   trigger);
        SCOPED_TRACE(ctx);
        const std::uint64_t warm_before = box.m.engine().stats().warm_attaches;
        const std::uint64_t cold_falls = box.m.engine().stats().warm_fallbacks;
        if (run_faulted_switch(box, ExecMode::kNative,
                               ExecMode::kPartialVirtual, plan, ctx)) {
          ++fired;
          // Faulted warm attempt + warm retry: the rollback preserved the
          // retained table and the armed tracker.
          EXPECT_EQ(box.m.engine().stats().warm_attaches, warm_before + 2)
              << ctx << ": retry after rollback did not go warm";
          EXPECT_EQ(box.m.engine().stats().warm_fallbacks, cold_falls)
              << ctx << ": rollback degraded the retained table to cold";
        }
        if (::testing::Test::HasFatalFailure()) return;
      }
      {
        // Detach direction: the site is attach-only, so the row must
        // commit untouched (and the retaining detach reopens the window).
        ASSERT_TRUE(box.settle(ExecMode::kPartialVirtual));
        const std::string ctx =
            std::string(core::fault_kind_name(kind)) + " " +
            ctx_of(plan.site, ExecMode::kPartialVirtual, ExecMode::kNative,
                   trigger);
        SCOPED_TRACE(ctx);
        EXPECT_FALSE(run_faulted_switch(box, ExecMode::kPartialVirtual,
                                        ExecMode::kNative, plan, ctx))
            << ctx << ": kDirtyRebuild fired on a detach";
        if (::testing::Test::HasFatalFailure()) return;
        ASSERT_TRUE(box.settle(ExecMode::kNative));
      }
    }
  }
  // Every attach-direction row must have fired: the window is dirty and
  // the triggers are shallow.
  EXPECT_EQ(fired, 6u);
}

TEST(FaultMatrix, WarmReattachCrewShardFaults) {
  // The same site fired from inside a crew worker's dirty_rebuild shard:
  // the crew must abort, join, rethrow on the CP, and the rollback +
  // warm retry must converge exactly as on the serial path.
  InjectorGuard guard;
  core::SwitchConfig sc;
  sc.warm_reattach = true;
  sc.crew_workers = 3;
  Box box(sc, /*cpus=*/4);
  ASSERT_TRUE(box.settle(ExecMode::kPartialVirtual));
  ASSERT_TRUE(box.settle(ExecMode::kNative));
  std::size_t fired = 0;
  for (const std::uint64_t trigger : {std::uint64_t{1}, std::uint64_t{7}}) {
    box.m.kernel().run_for(2 * hw::kCyclesPerMillisecond);
    FaultPlan plan;
    plan.site = FaultSite::kDirtyRebuild;
    plan.trigger_count = trigger;
    const std::string ctx = "crew " + ctx_of(plan.site, ExecMode::kNative,
                                             ExecMode::kPartialVirtual,
                                             trigger);
    SCOPED_TRACE(ctx);
    const std::uint64_t warm_before = box.m.engine().stats().warm_attaches;
    if (run_faulted_switch(box, ExecMode::kNative, ExecMode::kPartialVirtual,
                           plan, ctx)) {
      ++fired;
      EXPECT_EQ(box.m.engine().stats().warm_attaches, warm_before + 2) << ctx;
    }
    if (::testing::Test::HasFatalFailure()) return;
    ASSERT_TRUE(box.settle(ExecMode::kNative));
  }
  EXPECT_EQ(fired, 2u);
}

TEST(FaultMatrix, SupervisedWarmSweepNeverStrandsARequest) {
  // kDirtyRebuild under the supervisor: a single-shot fault of any kind on
  // the warm path must end committed-after-retry, with every request
  // terminal and the machine consistent — the warm path composes with
  // retry/backoff exactly like the cold sites.
  InjectorGuard guard;
  core::SwitchConfig sc;
  sc.warm_reattach = true;
  Box box(sc);
  core::SupervisorConfig scfg;
  scfg.backoff_base_ms = 0.5;
  scfg.quarantine_after = 100;
  core::SwitchSupervisor sup(box.m.engine(), scfg);
  FaultInjector& fi = core::fault_injector();
  std::size_t fired = 0;

  ASSERT_TRUE(sup.switch_now(ExecMode::kPartialVirtual,
                             500 * hw::kCyclesPerMillisecond));
  ASSERT_TRUE(sup.switch_now(ExecMode::kNative,
                             500 * hw::kCyclesPerMillisecond));
  for (const FaultKind kind :
       {FaultKind::kFail, FaultKind::kTimeout, FaultKind::kCorruptFrame}) {
    for (const std::uint64_t trigger : {std::uint64_t{1}, std::uint64_t{5}}) {
      box.m.kernel().run_for(2 * hw::kCyclesPerMillisecond);
      FaultPlan plan;
      plan.site = FaultSite::kDirtyRebuild;
      plan.kind = kind;
      plan.trigger_count = trigger;
      if (kind == FaultKind::kTimeout) plan.latency = hw::us_to_cycles(100.0);
      const std::string ctx =
          std::string("supervised warm ") + core::fault_kind_name(kind) +
          " trigger=" + std::to_string(trigger);
      SCOPED_TRACE(ctx);
      const std::uint64_t injected_before = fi.injected();
      fi.arm(plan);
      EXPECT_TRUE(sup.switch_now(ExecMode::kPartialVirtual,
                                 500 * hw::kCyclesPerMillisecond))
          << ctx << ": supervised warm switch did not commit";
      fi.disarm();
      if (fi.injected() > injected_before) ++fired;
      for (const core::SupervisedRequest& r : sup.requests())
        EXPECT_TRUE(core::request_state_terminal(r.state))
            << ctx << ": request " << r.id << " stranded in state "
            << core::request_state_name(r.state);
      box.expect_consistent(ctx);
      box.expect_os_runs(ctx);
      ASSERT_TRUE(sup.switch_now(ExecMode::kNative,
                                 500 * hw::kCyclesPerMillisecond));
    }
  }
  EXPECT_EQ(fired, 6u);
  EXPECT_EQ(sup.health(), core::SupervisorHealth::kHealthy);
  EXPECT_GT(box.m.engine().stats().warm_attaches, 0u);
}

TEST(FaultMatrix, SupervisedSweepNeverStrandsARequest) {
  // The whole serial fault matrix again, but driven through the switch
  // supervisor: a single-shot fault at any site, in either direction, must
  // end as committed-after-retry (the plan disarms on firing, so the backoff
  // retry is clean) — and no request may ever be left non-terminal.
  InjectorGuard guard;
  Box box;
  core::SupervisorConfig scfg;
  scfg.backoff_base_ms = 0.5;
  scfg.quarantine_after = 100;  // isolated single-shot faults never quarantine
  core::SwitchSupervisor sup(box.m.engine(), scfg);
  FaultInjector& fi = core::fault_injector();
  std::size_t fired = 0;

  const auto supervised_trial = [&](ExecMode target, const FaultPlan& plan,
                                    const std::string& ctx) {
    const std::uint64_t injected_before = fi.injected();
    fi.arm(plan);
    EXPECT_TRUE(
        sup.switch_now(target, 500 * hw::kCyclesPerMillisecond))
        << ctx << ": supervised switch did not commit";
    fi.disarm();
    EXPECT_EQ(box.m.mode(), target) << ctx;
    const core::SupervisedRequest* req = sup.find(sup.requests().size());
    ASSERT_NE(req, nullptr) << ctx;
    if (fi.injected() > injected_before) {
      ++fired;
      EXPECT_GE(req->attempts, 2u)
          << ctx << ": a fired fault must cost at least one retry";
    } else {
      EXPECT_EQ(req->attempts, 1u) << ctx;
    }
    for (const core::SupervisedRequest& r : sup.requests())
      EXPECT_TRUE(core::request_state_terminal(r.state))
          << ctx << ": request " << r.id << " stranded in state "
          << core::request_state_name(r.state);
    box.expect_consistent(ctx);
    box.expect_os_runs(ctx);
  };

  for (const FaultSite site : kAllSites) {
    for (const std::uint64_t trigger : {std::uint64_t{1}, std::uint64_t{3}}) {
      FaultPlan plan;
      plan.site = site;
      plan.trigger_count = trigger;
      plan.kind = site == FaultSite::kStackFixup ? FaultKind::kCorruptFrame
                                                 : FaultKind::kFail;
      {
        const std::string ctx = "supervised " +
            ctx_of(site, ExecMode::kNative, ExecMode::kPartialVirtual, trigger);
        SCOPED_TRACE(ctx);
        supervised_trial(ExecMode::kPartialVirtual, plan, ctx);
        if (::testing::Test::HasFatalFailure()) return;
      }
      {
        const std::string ctx = "supervised " +
            ctx_of(site, ExecMode::kPartialVirtual, ExecMode::kNative, trigger);
        SCOPED_TRACE(ctx);
        supervised_trial(ExecMode::kNative, plan, ctx);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
  EXPECT_GE(fired, 8u);
  EXPECT_EQ(sup.stats().committed, sup.stats().submitted)
      << "single-shot faults under supervision must all end committed";
  EXPECT_EQ(sup.health(), core::SupervisorHealth::kHealthy);
}

TEST(FaultMatrix, SupervisedPersistentStormQuarantinesWithPostmortem) {
  // When the faults never stop, the supervisor must degrade instead of
  // grinding: quarantine, fail the pending virtual-target request via its
  // callback, stay native, and leave a quarantine postmortem bundle behind.
  InjectorGuard guard;
  Box box;
  core::SupervisorConfig scfg;
  scfg.backoff_base_ms = 0.5;
  scfg.degraded_after = 2;
  scfg.quarantine_after = 3;
  scfg.probe_enabled = false;
  core::SwitchSupervisor sup(box.m.engine(), scfg);

  const std::uint64_t bundles_before = obs::postmortem_count();
  core::fault_injector().arm_storm(core::FaultStorm::uniform(1.0, 11));
  EXPECT_FALSE(sup.switch_now(ExecMode::kPartialVirtual));
  core::fault_injector().stop_storm();

  EXPECT_EQ(sup.health(), core::SupervisorHealth::kQuarantined);
  EXPECT_EQ(box.m.mode(), ExecMode::kNative);
  for (const core::SupervisedRequest& r : sup.requests())
    EXPECT_TRUE(core::request_state_terminal(r.state));
  EXPECT_GT(obs::postmortem_count(), bundles_before);
  const std::string bundle = read_file(obs::last_postmortem_path());
  EXPECT_NE(bundle.find("\"reason\":\"quarantine\""), std::string::npos);
  box.expect_consistent("post-quarantine");
  box.expect_os_runs("post-quarantine");
}

TEST(FaultMatrix, TimeoutFaultChargesLatency) {
  InjectorGuard guard;
  Box box;
  FaultPlan plan;
  plan.site = FaultSite::kTransferBindings;
  plan.kind = FaultKind::kTimeout;
  plan.latency = hw::us_to_cycles(200.0);

  core::fault_injector().arm(plan);
  const hw::Cycles before = box.machine.cpu(0).now();
  ASSERT_TRUE(box.settle(ExecMode::kPartialVirtual));
  core::fault_injector().disarm();

  EXPECT_EQ(box.m.mode(), ExecMode::kNative);
  EXPECT_EQ(box.m.engine().stats().rollbacks, 1u);
  // The wedged transfer burned at least its timeout before failing.
  EXPECT_GE(box.machine.cpu(0).now() - before, plan.latency);
  box.expect_consistent("timeout rollback");
}

#if MERCURY_OBS_ENABLED
TEST(FaultMatrix, RollbackAndInjectionMetricsAreExported) {
  InjectorGuard guard;
  Box box;
  FaultPlan plan;
  plan.site = FaultSite::kAdoptProtect;
  core::fault_injector().arm(plan);
  ASSERT_TRUE(box.settle(ExecMode::kPartialVirtual));
  ASSERT_EQ(box.m.mode(), ExecMode::kNative);

  const obs::Snapshot snap = obs::snapshot();
  const obs::InstrumentSample* rollbacks =
      snap.find("switch.rollbacks", box.m.engine().obs_label());
  ASSERT_NE(rollbacks, nullptr);
  EXPECT_GE(rollbacks->value, 1.0);
  ASSERT_NE(snap.find("fault.injected"), nullptr);

  const std::string json = obs::to_json(snap);
  EXPECT_NE(json.find("switch.rollbacks"), std::string::npos);
  EXPECT_NE(json.find("fault.injected"), std::string::npos);
  EXPECT_NE(json.find("vmm.adopt_rollbacks"), std::string::npos);
}
#endif

}  // namespace
}  // namespace mercury::testing
