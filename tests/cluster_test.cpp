// Cluster fabric + the paper's §6 scenarios as integration tests.
#include <gtest/gtest.h>

#include "cluster/failure.hpp"
#include "cluster/scenarios.hpp"
#include "kernel/syscalls.hpp"

namespace mercury::testing {
namespace {

using cluster::AvailabilityTracker;
using cluster::Fabric;
using cluster::FailureInjector;
using cluster::Node;
using kernel::Sub;
using kernel::Sys;

TEST(AvailabilityTrackerTest, AccountsDowntimeAndMtti) {
  AvailabilityTracker t;
  const hw::Cycles sec = hw::kCyclesPerMicrosecond * 1'000'000ull;
  t.service_down(0, "maintenance");
  t.service_up(2 * sec);
  t.service_down(50 * sec, "failure");
  t.service_up(53 * sec);
  t.finish(100 * sec);
  EXPECT_EQ(t.interruptions().size(), 2u);
  EXPECT_EQ(t.total_downtime(), 5 * sec);
  EXPECT_NEAR(t.availability(), 0.95, 0.001);
  EXPECT_NEAR(t.mtti_seconds(), 50.0, 0.5);
}

TEST(AvailabilityTrackerTest, FinishClosesOpenInterruption) {
  AvailabilityTracker t;
  t.service_down(0, "crash");
  t.finish(1000);
  EXPECT_FALSE(t.is_down());
  EXPECT_EQ(t.interruptions().size(), 1u);
}

TEST(FabricTest, NodesGetDistinctAddresses) {
  Fabric f;
  auto& a = f.add_node("a");
  auto& b = f.add_node("b");
  EXPECT_NE(a.machine().nic().address(), b.machine().nic().address());
  EXPECT_EQ(f.size(), 2u);
  EXPECT_EQ(f.link_between(a, b), nullptr);
  f.connect(a, b);
  EXPECT_NE(f.link_between(a, b), nullptr);
}

TEST(FabricTest, CoStepDrivesAllNodes) {
  Fabric f;
  auto& a = f.add_node("a");
  auto& b = f.add_node("b");
  f.connect(a, b);
  bool a_done = false, b_done = false;
  a.active().spawn("wa", [&](Sys& s) -> Sub<void> {
    co_await s.compute_us(2000.0);
    a_done = true;
  });
  b.active().spawn("wb", [&](Sys& s) -> Sub<void> {
    co_await s.compute_us(2000.0);
    b_done = true;
  });
  EXPECT_TRUE(f.co_step([&] { return a_done && b_done; },
                        100 * hw::kCyclesPerMillisecond));
}

TEST(ScenarioTest, OnlineMaintenancePreservesWorkload) {
  Fabric f;
  auto& a = f.add_node("a");
  auto& b = f.add_node("b");
  f.connect(a, b);
  long counter = 0;
  a.mercury().kernel().spawn("svc", [&](Sys& s) -> Sub<void> {
    for (;;) {
      co_await s.compute_us(400.0);
      ++counter;
    }
  });
  a.mercury().kernel().run_for(5 * hw::kCyclesPerMillisecond);
  const long before = counter;
  bool maintained = false;
  const auto report = cluster::online_maintenance(
      a, b, [&](hw::Machine&) { maintained = true; });
  ASSERT_TRUE(report.success);
  EXPECT_TRUE(maintained);
  EXPECT_EQ(a.mercury().mode(), core::ExecMode::kNative);
  EXPECT_EQ(b.mercury().mode(), core::ExecMode::kNative);
  EXPECT_LT(report.service_downtime(), report.total_cycles / 100)
      << "downtime is two stop-and-copy windows, not the whole procedure";
  a.mercury().kernel().run_for(5 * hw::kCyclesPerMillisecond);
  EXPECT_GT(counter, before);
}

TEST(ScenarioTest, SensorPredictionTriggersEvacuation) {
  Fabric f;
  auto& a = f.add_node("a");
  auto& b = f.add_node("b");
  f.connect(a, b);
  bool predicted = false;
  a.mercury().kernel().spawn("healthd", [&](Sys& s) -> Sub<void> {
    for (;;) {
      co_await s.sleep_us(1000.0);
      if (hw::HealthSensors::predicts_failure(s.read_sensors())) {
        predicted = true;
        co_return;
      }
    }
  });
  FailureInjector::schedule_overheat(a, a.machine().cpu(0).now() +
                                            5 * hw::kCyclesPerMillisecond);
  ASSERT_TRUE(a.mercury().kernel().run_until([&] { return predicted; },
                                             100 * hw::kCyclesPerMillisecond));
  const auto ev = cluster::evacuate(a, b);
  ASSERT_TRUE(ev.success);
  EXPECT_TRUE(b.hosts_foreign_guest());
  EXPECT_GT(ev.prediction_to_safety(), 0u);
}

TEST(ScenarioTest, LiveUpdatePatchesWithoutRestartAndDetaches) {
  Fabric f;
  auto& n = f.add_node("n");
  core::Mercury& m = n.mercury();
  m.kernel().set_selector_fixup_enabled(false);
  cluster::KernelPatch patch;
  patch.description = "re-enable fixup";
  patch.apply_fn = [](kernel::Kernel& k) {
    k.set_selector_fixup_enabled(true);
  };
  const auto report = cluster::live_update(m, patch);
  ASSERT_TRUE(report.success);
  EXPECT_TRUE(m.kernel().selector_fixup_enabled());
  EXPECT_EQ(m.mode(), core::ExecMode::kNative);
  EXPECT_GT(report.attach_cycles, 0u);
  EXPECT_GT(report.detach_cycles, 0u);
  EXPECT_GE(report.total_cycles,
            report.attach_cycles + report.patch_cycles + report.detach_cycles);
}

TEST(ScenarioTest, SelfHealRepairsInjectedCorruption) {
  Fabric f;
  auto& n = f.add_node("n");
  core::Mercury& m = n.mercury();
  bool alive = false;
  const kernel::Pid pid = m.kernel().spawn("victim", [&](Sys& s) -> Sub<void> {
    const auto va = s.mmap(8 * hw::kPageSize, true);
    s.touch_pages(va, 8, true);
    for (;;) {
      co_await s.sleep_us(2000.0);
      s.touch_pages(va, 8, true);
      alive = true;
    }
  });
  m.kernel().run_for(5 * hw::kCyclesPerMillisecond);
  ASSERT_TRUE(cluster::inject_pte_corruption(m, pid));
  const auto report = cluster::self_heal(m);
  EXPECT_TRUE(report.ran);
  EXPECT_GE(report.entries_healed, 1u);
  EXPECT_EQ(m.hypervisor().stats().domains_crashed, 0u);
  alive = false;
  m.kernel().run_for(10 * hw::kCyclesPerMillisecond);
  EXPECT_TRUE(alive) << "the victim keeps running after the repair";
  EXPECT_EQ(m.mode(), core::ExecMode::kNative);
}

TEST(ScenarioTest, WithoutHealingTheCorruptionCrashesTheAttach) {
  Fabric f;
  auto& n = f.add_node("n");
  core::Mercury& m = n.mercury();
  const kernel::Pid pid = m.kernel().spawn("victim", [](Sys& s) -> Sub<void> {
    const auto va = s.mmap(8 * hw::kPageSize, true);
    s.touch_pages(va, 8, true);
    for (;;) co_await s.sleep_us(2000.0);
  });
  m.kernel().run_for(5 * hw::kCyclesPerMillisecond);
  ASSERT_TRUE(cluster::inject_pte_corruption(m, pid));
  // A plain attach (no heal mode) must detect the taint and crash the
  // domain rather than enforce isolation on a corrupt table.
  ASSERT_TRUE(m.switch_to(core::ExecMode::kPartialVirtual));
  EXPECT_GE(m.hypervisor().stats().domains_crashed, 1u);
}

TEST(ScenarioTest, CheckpointThenRestoreRecoversAppValue) {
  Fabric f;
  auto& n = f.add_node("n");
  core::Mercury& m = n.mercury();
  hw::VirtAddr page = 0;
  const kernel::Pid pid = m.kernel().spawn("stateful", [&](Sys& s) -> Sub<void> {
    page = s.mmap(hw::kPageSize, true);
    s.touch_pages(page, 1, true);
    for (;;) co_await s.sleep_us(10'000.0);
  });
  m.kernel().run_for(3 * hw::kCyclesPerMillisecond);
  kernel::Task* t = m.kernel().find_task(pid);
  hw::Cpu& cpu = n.machine().cpu(0);
  cpu.set_cpl(hw::Ring::kRing0);
  cpu.write_cr3(t->aspace->page_directory());
  n.machine().mmu().write_u32(cpu, page, 0x600DF00D);

  auto ckpt = cluster::checkpoint_os(m);
  n.machine().mmu().write_u32(cpu, page, 0xDEAD0000);
  cluster::restore_os(m, ckpt.snapshot);
  cpu.set_cpl(hw::Ring::kRing0);
  cpu.write_cr3(t->aspace->page_directory());
  cpu.tlb().flush_global();
  EXPECT_EQ(n.machine().mmu().read_u32(cpu, page), 0x600DF00Du);
}

TEST(FailureInjectorTest, LinkLossDegradesDelivery) {
  Fabric f;
  auto& a = f.add_node("a");
  auto& b = f.add_node("b");
  f.connect(a, b);
  FailureInjector::set_link_loss(f, a, b, 1.0);
  hw::Packet pkt;
  (void)a.machine().nic().send(pkt, a.machine().cpu(0).now());
  EXPECT_EQ(f.link_between(a, b)->packets_dropped(), 1u);
}

}  // namespace
}  // namespace mercury::testing
