// Workload drivers + cross-system orderings: the relationships the paper's
// tables/figures depend on must hold for every seed and system.
#include <gtest/gtest.h>

#include "workloads/configs.hpp"
#include "workloads/dbench.hpp"
#include "workloads/kbuild.hpp"
#include "workloads/lmbench.hpp"
#include "workloads/osdb.hpp"

namespace mercury::testing {
namespace {

using workloads::Dbench;
using workloads::Kbuild;
using workloads::Lmbench;
using workloads::LmbenchParams;
using workloads::Osdb;
using workloads::Sut;
using workloads::SutParams;
using workloads::SystemId;

SutParams quick() {
  SutParams p;
  p.machine_mem_kb = 384 * 1024;
  p.kernel_mem_kb = 128 * 1024;
  p.domu_mem_kb = 96 * 1024;
  return p;
}

LmbenchParams fast_lm() {
  LmbenchParams lp;
  lp.fork_iters = 6;
  lp.exec_iters = 4;
  lp.sh_iters = 2;
  lp.ctx_rounds = 20;
  lp.mmap_iters = 1;
  lp.mmap_pages = 512;
  lp.fault_iters = 60;
  lp.pagefault_iters = 1;
  lp.pagefault_pages = 256;
  return lp;
}

class SystemParamTest : public ::testing::TestWithParam<SystemId> {};

TEST_P(SystemParamTest, LmbenchRunsAndProducesPositiveLatencies) {
  auto sut = Sut::create(GetParam(), quick());
  const auto r = Lmbench::run(sut->kernel(), fast_lm());
  EXPECT_GT(r.fork_us, 0);
  EXPECT_GT(r.exec_us, r.fork_us) << "exec includes a fork";
  EXPECT_GT(r.sh_us, r.exec_us) << "sh includes fork+exec(sh)+exec(cmd)";
  EXPECT_GT(r.ctx_16p64k_us, r.ctx_16p16k_us);
  EXPECT_GT(r.ctx_16p16k_us, r.ctx_2p0k_us);
  EXPECT_GT(r.page_fault_us, 0.2);
  EXPECT_GT(r.prot_fault_us, 0.2);
  EXPECT_LT(r.prot_fault_us, r.page_fault_us * 3);
  if (auto* hv = sut->hypervisor()) {
    EXPECT_EQ(hv->stats().domains_crashed, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSystems, SystemParamTest,
                         ::testing::ValuesIn(workloads::kAllSystems),
                         [](const auto& info) {
                           std::string s = workloads::system_label(info.param);
                           s.erase(std::remove(s.begin(), s.end(), '-'), s.end());
                           return s;
                         });

TEST(OrderingTest, VirtualizedForkIsSeveralTimesNative) {
  LmbenchParams lp = fast_lm();
  auto nl = Sut::create(SystemId::kNL, quick());
  auto x0 = Sut::create(SystemId::kX0, quick());
  auto mn = Sut::create(SystemId::kMN, quick());
  const double f_nl = Lmbench::fork_latency(nl->kernel(), lp);
  const double f_x0 = Lmbench::fork_latency(x0->kernel(), lp);
  const double f_mn = Lmbench::fork_latency(mn->kernel(), lp);
  EXPECT_GT(f_x0, 3.0 * f_nl) << "Xen fork must be several times native";
  EXPECT_GT(f_mn, f_nl) << "Mercury native pays its VO dispatch";
  EXPECT_LT(f_mn, 1.35 * f_nl) << "...but only a modest amount (paper ~16%)";
}

TEST(OrderingTest, MercuryVirtualTracksXenDom0) {
  LmbenchParams lp = fast_lm();
  auto x0 = Sut::create(SystemId::kX0, quick());
  auto mv = Sut::create(SystemId::kMV, quick());
  const double pf_x0 = Lmbench::page_fault_latency(x0->kernel(), lp);
  const double pf_mv = Lmbench::page_fault_latency(mv->kernel(), lp);
  EXPECT_GT(pf_mv, pf_x0 * 0.95);
  EXPECT_LT(pf_mv, pf_x0 * 1.25) << "M-V within a few percent of X-0";
}

TEST(OrderingTest, SmpLatenciesExceedUp) {
  LmbenchParams lp = fast_lm();
  auto up = Sut::create(SystemId::kNL, quick());
  SutParams smp_p = quick();
  smp_p.cpus = 2;
  auto smp = Sut::create(SystemId::kNL, smp_p);
  const double f_up = Lmbench::fork_latency(up->kernel(), lp);
  const double f_smp = Lmbench::fork_latency(smp->kernel(), lp);
  EXPECT_GT(f_smp, f_up) << "Table 2 > Table 1 everywhere";
}

TEST(DbenchTest, ProducesThroughputAndCleansUp) {
  auto sut = Sut::create(SystemId::kNL, quick());
  workloads::DbenchParams p;
  p.clients = 2;
  p.loops_per_client = 6;
  const auto r = Dbench::run(sut->kernel(), p);
  EXPECT_GT(r.throughput_mb_s, 0);
  EXPECT_GT(r.bytes_moved, 0u);
  EXPECT_EQ(sut->kernel().live_tasks(), 0u);
}

TEST(DbenchTest, DomUOutrunsDom0ViaWriteBehind) {
  workloads::DbenchParams p;
  p.clients = 2;
  p.loops_per_client = 12;
  auto x0 = Sut::create(SystemId::kX0, quick());
  auto xu = Sut::create(SystemId::kXU, quick());
  const double t_x0 = Dbench::run(x0->kernel(), p).throughput_mb_s;
  const double t_xu = Dbench::run(xu->kernel(), p).throughput_mb_s;
  EXPECT_GT(t_xu, t_x0) << "paper §7.3's dbench anomaly";
}

TEST(OsdbTest, WarmCacheQueriesAreFast) {
  auto sut = Sut::create(SystemId::kNL, quick());
  workloads::OsdbParams p;
  p.table_mb = 8;
  p.queries = 12;
  const auto r = Osdb::run(sut->kernel(), p);
  EXPECT_GT(r.queries_per_sec, 100.0);
  EXPECT_LT(r.mean_query_us, 10'000.0);
}

TEST(KbuildTest, ParallelBuildScalesOnSmp) {
  workloads::KbuildParams p;
  p.translation_units = 6;
  p.compile_cpu_ms = 8.0;
  auto up = Sut::create(SystemId::kNL, quick());
  SutParams smp_p = quick();
  smp_p.cpus = 2;
  auto smp = Sut::create(SystemId::kNL, smp_p);
  const double t_up = Kbuild::run(up->kernel(), p).build_seconds;
  const double t_smp = Kbuild::run(smp->kernel(), p).build_seconds;
  EXPECT_LT(t_smp, 0.75 * t_up) << "make -j2 must be visibly faster";
}

TEST(KbuildTest, VirtualizationCostsSingleDigitPercent) {
  workloads::KbuildParams p;
  p.translation_units = 5;
  auto nl = Sut::create(SystemId::kNL, quick());
  auto x0 = Sut::create(SystemId::kX0, quick());
  const double t_nl = Kbuild::run(nl->kernel(), p).build_seconds;
  const double t_x0 = Kbuild::run(x0->kernel(), p).build_seconds;
  const double overhead = t_x0 / t_nl - 1.0;
  EXPECT_GT(overhead, 0.02);
  EXPECT_LT(overhead, 0.25) << "paper: ~9%";
}

}  // namespace
}  // namespace mercury::testing
