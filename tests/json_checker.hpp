// A minimal JSON syntax checker (no deps) shared by the test binaries.
// Validates structure only; enough to prove exporters and postmortem dumps
// emit parseable documents. The Python tooling (scripts/check_bench_json.py)
// does the full schema validation.
#pragma once

#include <cctype>
#include <cstddef>
#include <string>

namespace mercury::testing {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {
    skip_ws();
    ok_ = value();
    skip_ws();
    if (pos_ != s_.size()) ok_ = false;
  }
  bool ok() const { return ok_; }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::string l(lit);
    if (s_.compare(pos_, l.size(), l) != 0) return false;
    pos_ += l.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  const std::string s_;
  std::size_t pos_ = 0;
  bool ok_ = false;
};

}  // namespace mercury::testing
