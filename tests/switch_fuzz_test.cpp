// Seeded switch fuzzer: random mode-switch requests interleaved with
// workload traffic, most of them carrying a randomly planned fault. After
// every round the machine must be internally consistent (invariant checker)
// and the workload must still run; the printed MERCURY_TEST_SEED replays any
// failure exactly.
#include <gtest/gtest.h>

#include <string>

#include "core/fault_inject.hpp"
#include "core/invariants.hpp"
#include "core/mercury.hpp"
#include "kernel/syscalls.hpp"
#include "tests/test_seed.hpp"
#include "util/rng.hpp"

namespace mercury::testing {
namespace {

using core::ExecMode;
using core::Mercury;
using kernel::Sub;
using kernel::Sys;

ExecMode random_mode(util::Rng& rng) {
  switch (rng.below(3)) {
    case 0: return ExecMode::kNative;
    case 1: return ExecMode::kPartialVirtual;
    default: return ExecMode::kFullVirtual;
  }
}

void fuzz(std::uint64_t seed, core::SwitchConfig sc,
          bool randomize_crew = false, bool randomize_warm = false) {
  util::Rng rng(seed);
  hw::MachineConfig mc;
  if (randomize_crew) {
    // Parallel switch pipeline: random machine width and crew size (0 =
    // serial path, up to every other CPU recruited). Seed-deterministic, so
    // MERCURY_TEST_SEED replays the exact crew shape.
    mc.num_cpus = 1 + rng.below(4);
    sc.crew_workers = rng.below(mc.num_cpus);
  } else {
    mc.num_cpus = rng.chance(0.3) ? 2 : 1;
  }
  mc.mem_kb = 96 * 1024;
  hw::Machine machine(mc);
  core::MercuryConfig cfg;
  cfg.kernel_frames = (32ull * 1024 * 1024) / hw::kPageSize;
  cfg.switch_config = sc;
  Mercury m(machine, cfg);

  long progress = 0;
  for (int i = 0; i < 3; ++i) {
    m.kernel().spawn("fuzz" + std::to_string(i), [&](Sys& s) -> Sub<void> {
      const auto va = s.mmap(8 * hw::kPageSize, true);
      const int fd = s.open("/fuzz", true);
      for (;;) {
        s.touch_pages(va, 8, true);
        co_await s.file_write(fd, 2048);
        co_await s.compute_us(30.0 + 50.0 * rng.uniform());
        ++progress;
      }
    });
  }
  m.kernel().run_for(2 * hw::kCyclesPerMillisecond);

  core::FaultInjector& fi = core::fault_injector();
  std::uint64_t faults_fired = 0;
  std::uint64_t commits = 0;
  const int rounds = 40;
  for (int round = 0; round < rounds; ++round) {
    const std::string ctx =
        "seed=" + std::to_string(seed) + " round=" + std::to_string(round);
    const ExecMode before = m.mode();
    const ExecMode target = random_mode(rng);
    // Flip warm re-attach mid-run: rounds interleave warm attaches, cold
    // attaches, retaining detaches, and mid-window disables (which must
    // void the tracked window, never feed it to a later warm rebuild).
    if (randomize_warm) m.engine().set_warm_reattach(rng.chance(0.5));
    const bool faulted = rng.chance(0.6);
    const std::uint64_t injected_before = fi.injected();
    if (faulted) fi.arm(core::random_fault_plan(rng));

    m.engine().request(target);
    ASSERT_TRUE(m.kernel().run_until([&] { return m.engine().idle(); },
                                     300 * hw::kCyclesPerMillisecond))
        << ctx;
    fi.disarm();

    const bool fired = fi.injected() > injected_before;
    faults_fired += fired ? 1 : 0;
    if (fired)
      EXPECT_EQ(m.mode(), before) << ctx << ": rollback left the wrong mode";
    else if (m.mode() == target)
      ++commits;

    const core::InvariantReport report =
        core::check_machine_invariants(m.engine());
    ASSERT_TRUE(report.ok()) << ctx << "\n" << report.to_string();

    // Interleave workload traffic between switches.
    m.kernel().run_for(
        hw::us_to_cycles(100.0 + 900.0 * rng.uniform()));
  }

  // Finish native and alive.
  fi.disarm();
  m.engine().request(ExecMode::kNative);
  ASSERT_TRUE(m.kernel().run_until([&] { return m.engine().idle(); },
                                   300 * hw::kCyclesPerMillisecond));
  EXPECT_EQ(m.mode(), ExecMode::kNative);
  const core::InvariantReport final_report =
      core::check_machine_invariants(m.engine());
  EXPECT_TRUE(final_report.ok()) << final_report.to_string();
  EXPECT_GT(progress, 0) << "workload never ran";
  EXPECT_EQ(m.hypervisor().stats().domains_crashed, 0u);
  EXPECT_EQ(m.kernel().stats().gp_faults_on_resume, 0u);
  std::printf("fuzz: %d rounds, %llu faults fired, %llu clean commits\n",
              rounds, static_cast<unsigned long long>(faults_fired),
              static_cast<unsigned long long>(commits));
}

TEST(SwitchFuzz, LazyConfigSurvivesRandomFaultedSwitches) {
  fuzz(test_seed(0xC0FFEE01ull), {});
}

TEST(SwitchFuzz, EagerConfigSurvivesRandomFaultedSwitches) {
  core::SwitchConfig sc;
  sc.eager_page_tracking = true;
  sc.eager_selector_fixup = true;
  // Self-check after every commit/rollback, on top of the per-round checks.
  sc.paranoid_invariants = true;
  fuzz(test_seed(0xC0FFEE02ull), sc);
}

TEST(SwitchFuzz, CrewConfigSurvivesRandomFaultedSwitches) {
  core::SwitchConfig sc;
  sc.eager_selector_fixup = true;  // exercise the crew fixup phase too
  sc.paranoid_invariants = true;
  fuzz(test_seed(0xC0FFEE03ull), sc, /*randomize_crew=*/true);
}

TEST(SwitchFuzz, WarmReattachConfigSurvivesRandomFaultedSwitches) {
  core::SwitchConfig sc;
  sc.warm_reattach = true;
  sc.paranoid_invariants = true;
  fuzz(test_seed(0xC0FFEE04ull), sc, /*randomize_crew=*/false,
       /*randomize_warm=*/true);
}

TEST(SwitchFuzz, WarmReattachCrewConfigSurvivesRandomFaultedSwitches) {
  core::SwitchConfig sc;
  sc.warm_reattach = true;
  sc.eager_selector_fixup = true;
  sc.paranoid_invariants = true;
  fuzz(test_seed(0xC0FFEE05ull), sc, /*randomize_crew=*/true,
       /*randomize_warm=*/true);
}

}  // namespace
}  // namespace mercury::testing
