// Live migration + checkpoint/restore correctness.
#include <gtest/gtest.h>

#include "cluster/scenarios.hpp"
#include "kernel/syscalls.hpp"
#include "vmm/checkpoint.hpp"
#include "vmm/migrate.hpp"

namespace mercury::testing {
namespace {

using cluster::Fabric;
using cluster::Node;
using kernel::Sub;
using kernel::Sys;

struct TwoNodes {
  TwoNodes() {
    a = &fabric.add_node("a");
    b = &fabric.add_node("b");
    fabric.connect(*a, *b);
  }
  Fabric fabric;
  Node* a = nullptr;
  Node* b = nullptr;
};

TEST(MigrationTest, GuestMemoryContentsArriveBitExact) {
  TwoNodes t;
  // Plant a recognizable value in guest memory via a process page.
  hw::VirtAddr page = 0;
  kernel::Pid pid = t.a->mercury().kernel().spawn("holder", [&](Sys& s) -> Sub<void> {
    page = s.mmap(hw::kPageSize, true);
    s.touch_pages(page, 1, true);
    for (;;) co_await s.sleep_us(20'000.0);
  });
  t.a->mercury().kernel().run_for(5 * hw::kCyclesPerMillisecond);
  kernel::Task* task = t.a->mercury().kernel().find_task(pid);
  auto pte = t.a->machine().mmu().peek_pte(
      [&]() -> hw::Cpu& {
        hw::Cpu& c = t.a->machine().cpu(0);
        c.set_cpl(hw::Ring::kRing0);
        c.write_cr3(task->aspace->page_directory());
        return c;
      }(),
      page);
  ASSERT_TRUE(pte.has_value());
  const hw::Pfn old_frame = pte->pfn();
  t.a->machine().memory().write_u32(hw::addr_of(old_frame) + 128, 0x5EC0FFEE);

  const auto ev = cluster::evacuate(*t.a, *t.b);
  ASSERT_TRUE(ev.success);

  // Same kernel object, new machine + frames: content must have traveled.
  kernel::Kernel& guest = t.a->mercury().kernel();
  EXPECT_EQ(&guest.machine(), &t.b->machine());
  auto pte2 = [&] {
    hw::Cpu& c = t.b->machine().cpu(0);
    c.set_cpl(hw::Ring::kRing0);
    c.write_cr3(guest.find_task(pid)->aspace->page_directory());
    return t.b->machine().mmu().peek_pte(c, page);
  }();
  ASSERT_TRUE(pte2.has_value());
  EXPECT_NE(pte2->pfn(), old_frame) << "frames are renumbered on the target";
  EXPECT_EQ(t.b->machine().memory().read_u32(hw::addr_of(pte2->pfn()) + 128),
            0x5EC0FFEEu);
}

TEST(MigrationTest, GuestKeepsRunningAfterMigration) {
  TwoNodes t;
  long counter = 0;
  t.a->mercury().kernel().spawn("worker", [&](Sys& s) -> Sub<void> {
    const auto va = s.mmap(16 * hw::kPageSize, true);
    for (;;) {
      s.touch_pages(va, 16, true);
      co_await s.compute_us(300.0);
      ++counter;
    }
  });
  t.a->mercury().kernel().run_for(10 * hw::kCyclesPerMillisecond);
  const long before = counter;
  ASSERT_GT(before, 0);

  const auto ev = cluster::evacuate(*t.a, *t.b);
  ASSERT_TRUE(ev.success);
  t.a->mercury().kernel().run_for(10 * hw::kCyclesPerMillisecond);
  EXPECT_GT(counter, before);
}

TEST(MigrationTest, DirtyPagesTriggerExtraRounds) {
  TwoNodes t;
  // A write-heavy guest dirties pages between pre-copy rounds.
  t.a->mercury().kernel().spawn("dirtier", [&](Sys& s) -> Sub<void> {
    const auto va = s.mmap(512 * hw::kPageSize, true);
    s.touch_pages(va, 512, true);
    for (;;) {
      s.touch_pages(va, 256, true);
      co_await s.compute_us(100.0);
    }
  });
  t.a->mercury().kernel().run_for(10 * hw::kCyclesPerMillisecond);
  ASSERT_TRUE(t.b->mercury().switch_to(core::ExecMode::kPartialVirtual));
  ASSERT_TRUE(t.a->mercury().switch_to(core::ExecMode::kFullVirtual));
  vmm::MigrationConfig cfg;
  cfg.max_rounds = 6;
  cfg.stop_threshold_pages = 16;
  const auto stats = vmm::LiveMigration::run(
      t.a->mercury().hypervisor(), t.a->mercury().guest_vo().dom(),
      t.b->mercury().hypervisor(), cfg);
  ASSERT_TRUE(stats.success);
  EXPECT_GT(stats.rounds, 1u) << "a dirtying guest needs iterative pre-copy";
  EXPECT_GT(stats.pages_sent, stats.pages_total) << "some pages resent";
  EXPECT_LT(stats.downtime_cycles, stats.total_cycles / 10)
      << "downtime must be a small fraction of total migration time";
}

TEST(MigrationTest, SourceFramesAreFreedAfterMigration) {
  TwoNodes t;
  const std::size_t free_before = t.a->machine().frames().frames_free();
  const auto ev = cluster::evacuate(*t.a, *t.b);
  ASSERT_TRUE(ev.success);
  EXPECT_GT(t.a->machine().frames().frames_free(), free_before);
}

TEST(CheckpointTest, RestoreIsBitExact) {
  hw::MachineConfig mc;
  mc.mem_kb = 192 * 1024;
  hw::Machine machine(mc);
  core::MercuryConfig cfg;
  cfg.kernel_frames = (64ull * 1024 * 1024) / hw::kPageSize;
  core::Mercury mercury(machine, cfg);

  mercury.kernel().spawn("idle", [](Sys& s) -> Sub<void> {
    for (;;) co_await s.sleep_us(50'000.0);
  });
  mercury.kernel().run_for(5 * hw::kCyclesPerMillisecond);

  // Work attached throughout: detach flips page-table writability bits in
  // the direct map, so bit-exactness is defined against the attached image.
  ASSERT_TRUE(mercury.switch_to(core::ExecMode::kPartialVirtual));
  hw::Cpu& cpu = machine.cpu(0);
  auto snap = vmm::Checkpointer::take(cpu, mercury.hypervisor(),
                                      mercury.driver_vo().dom());
  EXPECT_GT(snap.bytes(), 0u);
  EXPECT_TRUE(vmm::Checkpointer::matches(mercury.hypervisor(), snap));

  // Scribble over guest memory, then restore.
  machine.memory().write_u32(hw::addr_of(mercury.kernel().base_pfn() + 100) + 4,
                             0xBADBAD);
  EXPECT_FALSE(vmm::Checkpointer::matches(mercury.hypervisor(), snap));
  vmm::Checkpointer::restore(cpu, mercury.hypervisor(), snap);
  EXPECT_TRUE(vmm::Checkpointer::matches(mercury.hypervisor(), snap));
  ASSERT_TRUE(mercury.switch_to(core::ExecMode::kNative))
      << "the VMM detaches after the restore";
}

TEST(CheckpointTest, SnapshotCapturesVcpuState) {
  hw::MachineConfig mc;
  mc.mem_kb = 160 * 1024;
  hw::Machine machine(mc);
  core::MercuryConfig cfg;
  cfg.kernel_frames = (48ull * 1024 * 1024) / hw::kPageSize;
  core::Mercury mercury(machine, cfg);
  auto ckpt = cluster::checkpoint_os(mercury);
  EXPECT_EQ(ckpt.snapshot.vcpus.size(), machine.num_cpus());
}

}  // namespace
}  // namespace mercury::testing
