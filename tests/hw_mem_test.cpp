#include <gtest/gtest.h>

#include <set>

#include "hw/frame_alloc.hpp"
#include "hw/phys_mem.hpp"
#include "util/assert.hpp"

namespace mercury::hw {
namespace {

TEST(PhysicalMemory, ZeroInitialized) {
  PhysicalMemory mem(1024);
  EXPECT_EQ(mem.read_u32(0x1234), 0u);
  EXPECT_EQ(mem.read_u8(4096 * 100 + 7), 0u);
}

TEST(PhysicalMemory, ReadBackWrites) {
  PhysicalMemory mem(1024);
  mem.write_u32(0x1000, 0xDEADBEEF);
  mem.write_u8(0x2000, 0x7F);
  mem.write_u64(0x3000, 0x1122334455667788ull);
  EXPECT_EQ(mem.read_u32(0x1000), 0xDEADBEEFu);
  EXPECT_EQ(mem.read_u8(0x2000), 0x7Fu);
  EXPECT_EQ(mem.read_u64(0x3000), 0x1122334455667788ull);
}

TEST(PhysicalMemory, SparseBackingMaterializesOnWrite) {
  PhysicalMemory mem(1 << 18);  // 1 GB worth of frames
  EXPECT_EQ(mem.resident_chunks(), 0u);
  mem.write_u32(addr_of(1000), 1);
  EXPECT_EQ(mem.resident_chunks(), 1u);
  (void)mem.read_u32(addr_of(200000));  // read does not materialize
  EXPECT_EQ(mem.resident_chunks(), 1u);
}

TEST(PhysicalMemory, BulkBytesAcrossChunks) {
  PhysicalMemory mem(1024);
  std::vector<std::uint8_t> in(300000, 0xAB);
  mem.write_bytes(100, in);
  std::vector<std::uint8_t> out(300000);
  mem.read_bytes(100, out);
  EXPECT_EQ(in, out);
}

TEST(PhysicalMemory, FrameCopyAndZero) {
  PhysicalMemory mem(64);
  mem.write_u32(addr_of(3) + 40, 99);
  mem.copy_frame(5, 3);
  EXPECT_EQ(mem.read_u32(addr_of(5) + 40), 99u);
  mem.zero_frame(5);
  EXPECT_EQ(mem.read_u32(addr_of(5) + 40), 0u);
}

TEST(PhysicalMemory, CopyFromUnmaterializedZeroes) {
  PhysicalMemory mem(256);
  mem.write_u32(addr_of(9), 7);
  mem.copy_frame(9, 200);  // src never written
  EXPECT_EQ(mem.read_u32(addr_of(9)), 0u);
}

TEST(PhysicalMemory, OutOfRangeIsInvariantError) {
  PhysicalMemory mem(16);
  EXPECT_THROW(mem.read_u32(addr_of(16)), util::InvariantError);
  EXPECT_THROW(mem.write_u8(addr_of(20), 1), util::InvariantError);
}

TEST(FrameAllocator, AllocatesDistinctFrames) {
  FrameAllocator fa(64);
  std::set<Pfn> seen;
  Pfn f = 0;
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(fa.alloc(f));
    EXPECT_TRUE(seen.insert(f).second) << "duplicate frame " << f;
  }
  EXPECT_FALSE(fa.alloc(f)) << "allocated beyond capacity";
}

TEST(FrameAllocator, FreeMakesReusable) {
  FrameAllocator fa(4);
  Pfn f[4];
  for (auto& x : f) ASSERT_TRUE(fa.alloc(x));
  fa.free(f[2]);
  Pfn again = 0;
  ASSERT_TRUE(fa.alloc(again));
  EXPECT_EQ(again, f[2]);
}

TEST(FrameAllocator, DoubleFreeIsInvariantError) {
  FrameAllocator fa(4);
  Pfn f = 0;
  ASSERT_TRUE(fa.alloc(f));
  fa.free(f);
  EXPECT_THROW(fa.free(f), util::InvariantError);
}

TEST(FrameAllocator, ReserveRangeExcludedFromAllocation) {
  FrameAllocator fa(32);
  fa.reserve_range(0, 16);
  Pfn f = 0;
  while (fa.alloc(f)) EXPECT_GE(f, 16u);
  EXPECT_EQ(fa.frames_in_use(), 32u);
}

TEST(FrameAllocator, ContiguousAllocation) {
  FrameAllocator fa(64);
  Pfn first = 0;
  ASSERT_TRUE(fa.alloc_contiguous(10, first));
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(fa.is_allocated(first + i));
  Pfn second = 0;
  ASSERT_TRUE(fa.alloc_contiguous(10, second));
  EXPECT_TRUE(second >= first + 10 || second + 10 <= first);
}

TEST(FrameAllocator, ContiguousFailsWhenFragmented) {
  FrameAllocator fa(8);
  fa.reserve_range(3, 1);  // split the space into runs of 3 and 4
  Pfn f = 0;
  EXPECT_FALSE(fa.alloc_contiguous(5, f));
  EXPECT_TRUE(fa.alloc_contiguous(4, f));
}

TEST(FrameAllocator, Counters) {
  FrameAllocator fa(10);
  EXPECT_EQ(fa.frames_free(), 10u);
  Pfn f = 0;
  fa.alloc(f);
  EXPECT_EQ(fa.frames_in_use(), 1u);
  EXPECT_EQ(fa.frames_free(), 9u);
}

}  // namespace
}  // namespace mercury::hw
