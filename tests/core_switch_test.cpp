// The mode-switch engine: state machine, refcount gating + deferral timer,
// selector fixup (stub vs eager vs disabled), page-table protection flips,
// full-virtual role, validation abort, switch-time proportionality.
#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/mercury.hpp"
#include "core/switch_supervisor.hpp"
#include "kernel/syscalls.hpp"
#include "obs/obs.hpp"

namespace mercury::testing {
namespace {

using core::ExecMode;
using core::Mercury;
using core::MercuryConfig;
using kernel::Sub;
using kernel::Sys;

struct MercuryBox {
  explicit MercuryBox(MercuryConfig cfg = {}, std::size_t mem_mb = 256,
                      std::size_t cpus = 1) {
    hw::MachineConfig mc;
    mc.mem_kb = mem_mb * 1024;
    mc.num_cpus = cpus;
    machine = std::make_unique<hw::Machine>(mc);
    if (cfg.kernel_frames == 0)
      cfg.kernel_frames = ((mem_mb / 2) * 1024ull * 1024) / hw::kPageSize;
    mercury = std::make_unique<Mercury>(*machine, cfg);
  }
  std::unique_ptr<hw::Machine> machine;
  std::unique_ptr<Mercury> mercury;
};

TEST(SwitchEngine, RoundTripThroughAllModes) {
  MercuryBox box;
  Mercury& m = *box.mercury;
  EXPECT_EQ(m.mode(), ExecMode::kNative);
  ASSERT_TRUE(m.switch_to(ExecMode::kPartialVirtual));
  ASSERT_TRUE(m.switch_to(ExecMode::kFullVirtual));
  EXPECT_TRUE(m.hypervisor().blk_backend().connected());
  ASSERT_TRUE(m.switch_to(ExecMode::kPartialVirtual));
  EXPECT_FALSE(m.hypervisor().blk_backend().connected());
  ASSERT_TRUE(m.switch_to(ExecMode::kNative));
  EXPECT_FALSE(m.hypervisor().active());
  EXPECT_EQ(m.engine().stats().attaches, 1u);
  EXPECT_EQ(m.engine().stats().detaches, 1u);
}

TEST(SwitchEngine, RequestToCurrentModeIsNoOp) {
  MercuryBox box;
  EXPECT_TRUE(box.mercury->switch_to(ExecMode::kNative));
  EXPECT_EQ(box.mercury->engine().stats().detaches, 0u);
}

TEST(SwitchEngine, OpsPointerFollowsMode) {
  MercuryBox box;
  Mercury& m = *box.mercury;
  EXPECT_FALSE(m.kernel().ops().is_virtual());
  ASSERT_TRUE(m.switch_to(ExecMode::kPartialVirtual));
  EXPECT_TRUE(m.kernel().ops().is_virtual());
  EXPECT_EQ(m.kernel().ops().kernel_ring(), hw::Ring::kRing1);
  ASSERT_TRUE(m.switch_to(ExecMode::kNative));
  EXPECT_FALSE(m.kernel().ops().is_virtual());
  EXPECT_EQ(m.kernel().ops().kernel_ring(), hw::Ring::kRing0);
}

TEST(SwitchEngine, TrapOwnershipFollowsMode) {
  MercuryBox box;
  Mercury& m = *box.mercury;
  EXPECT_EQ(box.machine->cpu(0).trap_sink(),
            static_cast<hw::TrapSink*>(&m.kernel()));
  ASSERT_TRUE(m.switch_to(ExecMode::kPartialVirtual));
  EXPECT_EQ(box.machine->cpu(0).trap_sink(),
            static_cast<hw::TrapSink*>(&m.hypervisor()));
  ASSERT_TRUE(m.switch_to(ExecMode::kNative));
  EXPECT_EQ(box.machine->cpu(0).trap_sink(),
            static_cast<hw::TrapSink*>(&m.kernel()));
}

TEST(SwitchEngine, PageTablesWritableOnlyInNativeMode) {
  MercuryBox box;
  Mercury& m = *box.mercury;
  const hw::Pfn l1 = m.kernel().kernel_l1_frames().front();
  const hw::VirtAddr kva = m.kernel().kva_of_frame(l1);
  auto writable_at = [&](hw::Ring ring) {
    hw::Cpu& c = box.machine->cpu(0);
    const hw::Ring prev = c.cpl();
    c.set_cpl(ring);
    c.tlb().flush_global();
    const bool ok =
        box.machine->mmu().translate(c, kva, hw::Access::kWrite).has_value();
    c.set_cpl(prev);
    return ok;
  };
  EXPECT_TRUE(writable_at(hw::Ring::kRing0));
  ASSERT_TRUE(m.switch_to(ExecMode::kPartialVirtual));
  EXPECT_FALSE(writable_at(hw::Ring::kRing1))
      << "attached: PT pages must be read-only (direct paging)";
  ASSERT_TRUE(m.switch_to(ExecMode::kNative));
  EXPECT_TRUE(writable_at(hw::Ring::kRing0))
      << "detached: writability restored";
}

TEST(SwitchEngine, RefcountDefersCommit) {
  MercuryBox box;
  Mercury& m = *box.mercury;
  // Hold a VO section across sleeps: the paper's rare long-sensitive-path.
  bool release_now = false;
  m.kernel().spawn("holder", [&](Sys& s) -> Sub<void> {
    core::VirtObject::Section section(m.native_vo());
    while (!release_now) co_await s.sleep_us(2'000.0);
    section.release();
    for (;;) co_await s.sleep_us(10'000.0);
  });
  m.kernel().run_for(hw::kCyclesPerMillisecond);
  ASSERT_EQ(m.native_vo().active_refs(), 1);

  m.engine().request(ExecMode::kPartialVirtual);
  m.kernel().run_for(25 * hw::kCyclesPerMillisecond);
  EXPECT_EQ(m.mode(), ExecMode::kNative) << "switch must not land while held";
  EXPECT_GE(m.engine().stats().deferrals, 1u) << "10ms retry timer armed";

  release_now = true;
  EXPECT_TRUE(m.kernel().run_until(
      [&] { return m.mode() == ExecMode::kPartialVirtual; },
      200 * hw::kCyclesPerMillisecond))
      << "switch commits once the reference count drains";
}

TEST(SwitchEngine, BudgetExhaustedSwitchNowCancelsTheStaleRequest) {
  // Regression: switch_now used to return false on budget exhaustion but
  // leave the request pending — the deferral timer would then commit the
  // switch later, behind the back of a caller who was told it failed.
  MercuryBox box;
  Mercury& m = *box.mercury;
  bool release_now = false;
  m.kernel().spawn("holder", [&](Sys& s) -> Sub<void> {
    core::VirtObject::Section section(m.native_vo());
    while (!release_now) co_await s.sleep_us(2'000.0);
    section.release();
    for (;;) co_await s.sleep_us(10'000.0);
  });
  m.kernel().run_for(hw::kCyclesPerMillisecond);
  ASSERT_EQ(m.native_vo().active_refs(), 1);

  EXPECT_FALSE(m.engine().switch_now(ExecMode::kPartialVirtual,
                                     20 * hw::kCyclesPerMillisecond));
  EXPECT_TRUE(m.engine().idle())
      << "budget exhaustion must revoke the request, not leave it armed";
  EXPECT_EQ(m.engine().last_outcome(), core::SwitchOutcome::kCancelled);
  EXPECT_EQ(m.engine().stats().cancels, 1u);

  release_now = true;
  m.kernel().run_for(100 * hw::kCyclesPerMillisecond);
  EXPECT_EQ(m.mode(), ExecMode::kNative)
      << "a cancelled request committed once the refcount drained";
  // The engine is healthy, not wedged: a fresh request works.
  EXPECT_TRUE(m.switch_to(ExecMode::kPartialVirtual));
  EXPECT_TRUE(m.switch_to(ExecMode::kNative));
}

TEST(SwitchEngine, DeferralRetriesOnTimerUntilRefcountDrains) {
  MercuryBox box;
  Mercury& m = *box.mercury;
  // An in-flight VO entry (§5.1.1) held across several 10 ms retry periods:
  // every expiry must re-defer, and the commit lands only once the count
  // drains — charging the full wait to last_defer_wait_cycles.
  bool release_now = false;
  m.kernel().spawn("holder", [&](Sys& s) -> Sub<void> {
    core::VirtObject::Section section(m.native_vo());
    while (!release_now) co_await s.sleep_us(2'000.0);
    section.release();
    for (;;) co_await s.sleep_us(10'000.0);
  });
  m.kernel().run_for(hw::kCyclesPerMillisecond);
  ASSERT_EQ(m.native_vo().active_refs(), 1);

  const auto deferrals_before = m.engine().stats().deferrals;
  m.engine().request(ExecMode::kPartialVirtual);
  m.kernel().run_for(35 * hw::kCyclesPerMillisecond);
  EXPECT_EQ(m.mode(), ExecMode::kNative);
  EXPECT_GE(m.engine().stats().deferrals, deferrals_before + 2)
      << "each 10 ms retry against a held refcount must count a deferral";

  release_now = true;
  ASSERT_TRUE(m.kernel().run_until(
      [&] { return m.mode() == ExecMode::kPartialVirtual; },
      200 * hw::kCyclesPerMillisecond));
  EXPECT_GE(m.engine().stats().last_defer_wait_cycles,
            hw::us_to_cycles(10'000.0))
      << "the commit waited through at least one full retry period";
#if MERCURY_OBS_ENABLED
  const obs::Snapshot snap = obs::snapshot();
  const obs::InstrumentSample* deferrals =
      snap.find("switch.deferrals", m.engine().obs_label());
  ASSERT_NE(deferrals, nullptr);
  EXPECT_GE(deferrals->value,
            static_cast<double>(deferrals_before + 2));
#endif

  // Detach direction: a reference into the *virtual* VO defers the same way.
  bool release_detach = false;
  m.kernel().spawn("holder2", [&](Sys& s) -> Sub<void> {
    core::VirtObject::Section section(m.driver_vo());
    while (!release_detach) co_await s.sleep_us(2'000.0);
    section.release();
    for (;;) co_await s.sleep_us(10'000.0);
  });
  m.kernel().run_for(hw::kCyclesPerMillisecond);
  const auto detach_deferrals_before = m.engine().stats().deferrals;
  m.engine().request(ExecMode::kNative);
  m.kernel().run_for(25 * hw::kCyclesPerMillisecond);
  EXPECT_EQ(m.mode(), ExecMode::kPartialVirtual);
  EXPECT_GE(m.engine().stats().deferrals, detach_deferrals_before + 1);
  release_detach = true;
  EXPECT_TRUE(m.kernel().run_until(
      [&] { return m.mode() == ExecMode::kNative; },
      200 * hw::kCyclesPerMillisecond));
}

TEST(SwitchEngine, NestedInterruptFramesPatchedByResumeStub) {
  MercuryBox box;
  Mercury& m = *box.mercury;
  m.kernel().spawn("sleeper", [](Sys& s) -> Sub<void> {
    for (;;) co_await s.sleep_us(3'000.0);
  });
  m.kernel().run_for(hw::kCyclesPerMillisecond);
  kernel::Task* t = nullptr;
  m.kernel().for_each_task([&](kernel::Task& task) { t = &task; });
  ASSERT_NE(t, nullptr);
  ASSERT_TRUE(t->saved_ctx.valid);
  // Interrupts that fired while the thread was already in the kernel leave
  // nested frames above the base one; each carries its own stale selectors.
  t->saved_ctx.nested.push_back(
      {hw::make_selector(hw::kGdtKernelCs, hw::Ring::kRing0),
       hw::make_selector(hw::kGdtKernelDs, hw::Ring::kRing0)});
  t->saved_ctx.nested.push_back(
      {hw::make_selector(hw::kGdtKernelCs, hw::Ring::kRing0),
       hw::make_selector(hw::kGdtKernelDs, hw::Ring::kRing0)});

  ASSERT_TRUE(m.switch_to(ExecMode::kPartialVirtual));
  const auto fixups_before = m.kernel().stats().selector_fixups;
  m.kernel().run_for(10 * hw::kCyclesPerMillisecond);  // resume under ring 1
  EXPECT_GE(m.kernel().stats().selector_fixups, fixups_before + 3)
      << "the stub must rewrite the base frame and both nested frames";
  EXPECT_EQ(m.kernel().stats().gp_faults_on_resume, 0u);
}

TEST(SwitchEngine, NestedFramesAndStackTopFixedEagerlyBothDirections) {
  MercuryConfig cfg;
  cfg.switch_config.eager_selector_fixup = true;
  MercuryBox box(cfg);
  Mercury& m = *box.mercury;
  // Block long enough to stay suspended across both switches: the eager
  // walk must patch the frames in place, without the task ever resuming.
  m.kernel().spawn("sleeper", [](Sys& s) -> Sub<void> {
    for (;;) co_await s.sleep_us(500'000.0);
  });
  m.kernel().run_for(hw::kCyclesPerMillisecond);
  kernel::Task* t = nullptr;
  m.kernel().for_each_task([&](kernel::Task& task) { t = &task; });
  ASSERT_NE(t, nullptr);
  ASSERT_TRUE(t->saved_ctx.valid);
  t->saved_ctx.nested.push_back(
      {hw::make_selector(hw::kGdtKernelCs, hw::Ring::kRing0),
       hw::make_selector(hw::kGdtKernelDs, hw::Ring::kRing0)});
  t->saved_ctx.at_stack_top = true;  // base frame flush with the stack end

  ASSERT_TRUE(m.switch_to(ExecMode::kPartialVirtual));
  EXPECT_EQ(t->saved_ctx.cs.rpl(), hw::Ring::kRing1);
  EXPECT_EQ(t->saved_ctx.ss.rpl(), hw::Ring::kRing1);
  ASSERT_EQ(t->saved_ctx.nested.size(), 1u);
  EXPECT_EQ(t->saved_ctx.nested[0].cs.rpl(), hw::Ring::kRing1)
      << "attach direction: the nested frame must be walked too";

  ASSERT_TRUE(m.switch_to(ExecMode::kNative));
  EXPECT_EQ(t->saved_ctx.cs.rpl(), hw::Ring::kRing0);
  EXPECT_EQ(t->saved_ctx.nested[0].cs.rpl(), hw::Ring::kRing0)
      << "detach direction: the nested frame returns to ring 0";
  EXPECT_TRUE(t->saved_ctx.at_stack_top) << "boundary flag must survive";
  m.kernel().run_for(10 * hw::kCyclesPerMillisecond);
  EXPECT_EQ(m.kernel().stats().gp_faults_on_resume, 0u);
}

TEST(SwitchEngine, SelectorFixupStubPatchesBlockedTasks) {
  MercuryBox box;
  Mercury& m = *box.mercury;
  m.kernel().spawn("sleeper", [](Sys& s) -> Sub<void> {
    for (;;) co_await s.sleep_us(3'000.0);
  });
  m.kernel().run_for(hw::kCyclesPerMillisecond);
  // Blocked in-kernel: saved selectors carry ring 0.
  kernel::Task* t = nullptr;
  m.kernel().for_each_task([&](kernel::Task& task) { t = &task; });
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->saved_ctx.cs.rpl(), hw::Ring::kRing0);

  ASSERT_TRUE(m.switch_to(ExecMode::kPartialVirtual));
  const auto fixups_before = m.kernel().stats().selector_fixups;
  m.kernel().run_for(10 * hw::kCyclesPerMillisecond);  // resume under ring 1
  EXPECT_GT(m.kernel().stats().selector_fixups, fixups_before)
      << "the resume stub must rewrite the stale ring-0 selectors";
  EXPECT_EQ(m.kernel().stats().gp_faults_on_resume, 0u);
}

TEST(SwitchEngine, DisabledFixupFaultsExactlyAsThePaperWarns) {
  MercuryBox box;
  Mercury& m = *box.mercury;
  m.kernel().set_selector_fixup_enabled(false);
  bool alive_marker = false;
  const kernel::Pid pid = m.kernel().spawn("victim", [&](Sys& s) -> Sub<void> {
    for (;;) {
      co_await s.sleep_us(3'000.0);
      alive_marker = true;
    }
  });
  m.kernel().run_for(hw::kCyclesPerMillisecond);
  ASSERT_TRUE(m.switch_to(ExecMode::kPartialVirtual));
  m.kernel().run_for(20 * hw::kCyclesPerMillisecond);
  EXPECT_GE(m.kernel().stats().gp_faults_on_resume, 1u)
      << "popping a stale selector must raise #GP (paper §5.1.2)";
  kernel::Task* t = m.kernel().find_task(pid);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->state, kernel::TaskState::kZombie);
  (void)alive_marker;
}

TEST(SwitchEngine, EagerFixupAvoidsResumeStubWork) {
  MercuryConfig cfg;
  cfg.switch_config.eager_selector_fixup = true;
  MercuryBox box(cfg);
  Mercury& m = *box.mercury;
  m.kernel().spawn("sleeper", [](Sys& s) -> Sub<void> {
    for (;;) co_await s.sleep_us(3'000.0);
  });
  m.kernel().run_for(hw::kCyclesPerMillisecond);
  ASSERT_TRUE(m.switch_to(ExecMode::kPartialVirtual));
  kernel::Task* t = nullptr;
  m.kernel().for_each_task([&](kernel::Task& task) { t = &task; });
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->saved_ctx.cs.rpl(), hw::Ring::kRing1)
      << "eager walk already rewrote the saved frame at switch time";
}

TEST(SwitchEngine, ValidationAbortLeavesModeUntouched) {
  MercuryConfig cfg;
  cfg.switch_config.validate_before_commit = true;
  MercuryBox box(cfg);
  Mercury& m = *box.mercury;
  // Sanity: with a healthy kernel the validated switch succeeds.
  ASSERT_TRUE(m.switch_to(ExecMode::kPartialVirtual));
  ASSERT_TRUE(m.switch_to(ExecMode::kNative));
  EXPECT_EQ(m.engine().stats().validation_aborts, 0u);
}

TEST(SwitchEngine, AttachScalesWithMemoryDetachDoesNot) {
  auto time_switch = [](std::size_t mem_mb) {
    MercuryConfig cfg;
    cfg.kernel_frames = (mem_mb * 1024ull * 1024 / 2) / hw::kPageSize;
    MercuryBox box(cfg, mem_mb);
    Mercury& m = *box.mercury;
    EXPECT_TRUE(m.switch_to(ExecMode::kPartialVirtual));
    const hw::Cycles attach = m.engine().stats().last_attach_cycles;
    EXPECT_TRUE(m.switch_to(ExecMode::kNative));
    const hw::Cycles detach = m.engine().stats().last_detach_cycles;
    return std::make_pair(attach, detach);
  };
  const auto [attach_small, detach_small] = time_switch(128);
  const auto [attach_big, detach_big] = time_switch(512);
  EXPECT_GT(attach_big, 3 * attach_small)
      << "attach is dominated by the per-frame info rebuild (§7.4)";
  EXPECT_LT(detach_big, 3 * detach_small)
      << "detach drops the accounting in O(1) + O(#page tables)";
  EXPECT_GT(attach_big, 5 * detach_big) << "attach >> detach, as measured";
}

TEST(SwitchEngine, CrewAttachMatchesSerialStateAndIsFaster) {
  // Parallel switch pipeline vs. the legacy serial path on the same machine
  // shape: the final machine state must be identical frame-for-frame, and
  // the sharded bulk transfer must be at least 2x faster with 3 workers.
  // Compare the transfer-phase cycles, not last_attach_cycles: on an SMP
  // box the total is dominated by inter-CPU clock skew (idle CPUs run ahead
  // until the switch interrupt, and the rendezvous aligns the CP to the max
  // clock), identically on both paths.
  hw::Cycles serial_attach = 0;
  hw::Cycles serial_detach = 0;
  std::vector<vmm::PageInfo> serial_snap;
  {
    MercuryBox serial({}, /*mem_mb=*/256, /*cpus=*/4);
    Mercury& m = *serial.mercury;
    ASSERT_TRUE(m.switch_to(ExecMode::kPartialVirtual));
    serial_attach = m.engine().stats().last_transfer.page_info_cycles;
    serial_snap = m.hypervisor().page_info().snapshot();
    ASSERT_TRUE(m.switch_to(ExecMode::kNative));
    serial_detach = m.engine().stats().last_transfer.protection_cycles;
  }

  MercuryConfig cfg;
  cfg.switch_config.crew_workers = 3;
  MercuryBox crew(cfg, /*mem_mb=*/256, /*cpus=*/4);
  Mercury& m = *crew.mercury;
  ASSERT_TRUE(m.switch_to(ExecMode::kPartialVirtual));
  const hw::Cycles crew_attach =
      m.engine().stats().last_transfer.page_info_cycles;
  EXPECT_GE(serial_attach, 2 * crew_attach)
      << "4 CPUs sharding the bulk phases must at least halve the transfer "
         "latency (serial=" << serial_attach << " crew=" << crew_attach << ")";

  const std::vector<vmm::PageInfo> crew_snap =
      m.hypervisor().page_info().snapshot();
  ASSERT_EQ(serial_snap.size(), crew_snap.size());
  std::size_t mismatches = 0;
  for (std::size_t pfn = 0; pfn < serial_snap.size(); ++pfn) {
    const vmm::PageInfo& a = serial_snap[pfn];
    const vmm::PageInfo& b = crew_snap[pfn];
    if (a.owner != b.owner || a.type != b.type ||
        a.type_count != b.type_count || a.ref_count != b.ref_count ||
        a.pinned != b.pinned)
      ++mismatches;
  }
  EXPECT_EQ(mismatches, 0u)
      << "sharded rebuild diverged from the serial accounting";

  ASSERT_TRUE(m.switch_to(ExecMode::kNative));
  const hw::Cycles crew_detach =
      m.engine().stats().last_transfer.protection_cycles;
  EXPECT_LT(crew_detach, serial_detach)
      << "sharded unprotect must not be slower than the serial walk";
  EXPECT_FALSE(m.hypervisor().active());
}

TEST(SwitchEngine, CrewWorkersZeroTakesTheSerialPathExactly) {
  // crew_workers = 0 must select the legacy serial pipeline, cycle for
  // cycle: identical machines, one defaulted and one explicit, land on the
  // same clock after a full round trip.
  MercuryBox a({}, /*mem_mb=*/128, /*cpus=*/2);
  MercuryConfig cfg;
  cfg.switch_config.crew_workers = 0;
  MercuryBox b(cfg, /*mem_mb=*/128, /*cpus=*/2);
  ASSERT_TRUE(a.mercury->switch_to(ExecMode::kPartialVirtual));
  ASSERT_TRUE(b.mercury->switch_to(ExecMode::kPartialVirtual));
  EXPECT_EQ(a.mercury->engine().stats().last_attach_cycles,
            b.mercury->engine().stats().last_attach_cycles);
  ASSERT_TRUE(a.mercury->switch_to(ExecMode::kNative));
  ASSERT_TRUE(b.mercury->switch_to(ExecMode::kNative));
  EXPECT_EQ(a.mercury->engine().stats().last_detach_cycles,
            b.mercury->engine().stats().last_detach_cycles);
  EXPECT_EQ(a.machine->cpu(0).now(), b.machine->cpu(0).now());
  EXPECT_EQ(a.machine->cpu(1).now(), b.machine->cpu(1).now());

  // And the supervised retry machinery must be free on the happy path: the
  // same round trip through a SwitchSupervisor (crew_workers = 0) lands on
  // exactly the same clocks as the bare serial engine.
  MercuryConfig sup_cfg;
  sup_cfg.switch_config.crew_workers = 0;
  MercuryBox c(sup_cfg, /*mem_mb=*/128, /*cpus=*/2);
  core::SwitchSupervisor sup(c.mercury->engine());
  ASSERT_TRUE(sup.switch_now(ExecMode::kPartialVirtual));
  ASSERT_TRUE(sup.switch_now(ExecMode::kNative));
  EXPECT_EQ(a.mercury->engine().stats().last_attach_cycles,
            c.mercury->engine().stats().last_attach_cycles);
  EXPECT_EQ(a.mercury->engine().stats().last_detach_cycles,
            c.mercury->engine().stats().last_detach_cycles);
  EXPECT_EQ(a.machine->cpu(0).now(), c.machine->cpu(0).now());
  EXPECT_EQ(a.machine->cpu(1).now(), c.machine->cpu(1).now());
}

TEST(SwitchEngine, CrewClampsToMachineSize) {
  // More workers than the machine has spare CPUs: the crew clamps (UP means
  // the control processor works alone) and the switch still commits.
  MercuryConfig cfg;
  cfg.switch_config.crew_workers = 16;
  MercuryBox box(cfg, /*mem_mb=*/128, /*cpus=*/1);
  Mercury& m = *box.mercury;
  ASSERT_TRUE(m.switch_to(ExecMode::kPartialVirtual));
  EXPECT_TRUE(m.hypervisor().active());
  ASSERT_TRUE(m.switch_to(ExecMode::kNative));
  EXPECT_FALSE(m.hypervisor().active());
}

TEST(SwitchEngine, CrewDispatchWaitsForRefcountZero) {
  // Shard dispatch is gated on the §5.1.1 commit point: while a VO section
  // is held the crewed switch must defer exactly like the serial one, and
  // only dispatch (then commit) once the reference count drains.
  MercuryConfig cfg;
  cfg.switch_config.crew_workers = 3;
  MercuryBox box(cfg, /*mem_mb=*/128, /*cpus=*/4);
  Mercury& m = *box.mercury;
  bool release_now = false;
  m.kernel().spawn("holder", [&](Sys& s) -> Sub<void> {
    core::VirtObject::Section section(m.native_vo());
    while (!release_now) co_await s.sleep_us(2'000.0);
    section.release();
    for (;;) co_await s.sleep_us(10'000.0);
  });
  m.kernel().run_for(hw::kCyclesPerMillisecond);
  ASSERT_EQ(m.native_vo().active_refs(), 1);

  m.engine().request(ExecMode::kPartialVirtual);
  m.kernel().run_for(25 * hw::kCyclesPerMillisecond);
  EXPECT_EQ(m.mode(), ExecMode::kNative)
      << "crew must not dispatch shards while a VO reference is live";
  EXPECT_GE(m.engine().stats().deferrals, 1u);

  release_now = true;
  EXPECT_TRUE(m.kernel().run_until(
      [&] { return m.mode() == ExecMode::kPartialVirtual; },
      200 * hw::kCyclesPerMillisecond));
  EXPECT_EQ(m.engine().stats().attaches, 1u);
}

TEST(SwitchEngine, SmpSwitchRendezvousesAllCpus) {
  MercuryBox box({}, 256, /*cpus=*/2);
  Mercury& m = *box.mercury;
  const auto ipis_before = box.machine->interrupts().ipis_sent();
  ASSERT_TRUE(m.switch_to(ExecMode::kPartialVirtual));
  EXPECT_GT(m.engine().stats().last_rendezvous_cycles, 0u);
  EXPECT_GT(box.machine->interrupts().ipis_sent(), ipis_before);
  // Both CPUs end aligned on the new mode's state.
  EXPECT_EQ(box.machine->cpu(0).idt(), m.hypervisor().idt_token());
  EXPECT_EQ(box.machine->cpu(1).idt(), m.hypervisor().idt_token());
  ASSERT_TRUE(m.switch_to(ExecMode::kNative));
  EXPECT_EQ(box.machine->cpu(0).idt(), m.kernel().idt_token());
  EXPECT_EQ(box.machine->cpu(1).idt(), m.kernel().idt_token());
}

TEST(SwitchEngine, IdtReloadedPerMode) {
  MercuryBox box;
  Mercury& m = *box.mercury;
  EXPECT_EQ(box.machine->cpu(0).idt(), m.kernel().idt_token());
  ASSERT_TRUE(m.switch_to(ExecMode::kPartialVirtual));
  EXPECT_EQ(box.machine->cpu(0).idt(), m.hypervisor().idt_token())
      << "hardware IDT belongs to the VMM in virtual mode";
}

#if MERCURY_OBS_ENABLED
// Each phase histogram must gain a sample per committed switch, and the
// per-engine callback gauges must mirror SwitchStats live. The registry is
// process-global, so assert on deltas.
TEST(SwitchEngine, PerPhaseMetricsPopulatedByAttachAndDetach) {
  const auto hist_count = [](const obs::Snapshot& snap, const char* name) {
    const obs::InstrumentSample* s = snap.find(name);
    return s ? s->count : 0u;
  };
  const obs::Snapshot before = obs::snapshot();

  MercuryBox box;
  Mercury& m = *box.mercury;
  ASSERT_TRUE(m.switch_to(ExecMode::kPartialVirtual));
  ASSERT_TRUE(m.switch_to(ExecMode::kNative));

  const obs::Snapshot after = obs::snapshot();
  for (const char* h :
       {"switch.attach.total_cycles", "switch.attach.defer_cycles",
        "switch.attach.rendezvous_cycles", "switch.attach.transfer_cycles",
        "switch.attach.fixup_cycles", "switch.detach.total_cycles",
        "switch.detach.defer_cycles", "switch.detach.rendezvous_cycles",
        "switch.detach.transfer_cycles", "switch.detach.fixup_cycles"}) {
    EXPECT_EQ(hist_count(after, h), hist_count(before, h) + 1) << h;
  }
  // Total time is the whole commit: at least the sum of the parts it spans.
  const obs::InstrumentSample* total = after.find("switch.attach.total_cycles");
  ASSERT_NE(total, nullptr);
  EXPECT_GT(total->max, 0.0);

  // The engine's stats surface as live callback gauges under its label.
  const std::string& label = m.engine().obs_label();
  ASSERT_FALSE(label.empty());
  const obs::InstrumentSample* attaches = after.find("switch.attaches", label);
  ASSERT_NE(attaches, nullptr);
  EXPECT_DOUBLE_EQ(attaches->value,
                   static_cast<double>(m.engine().stats().attaches));
  const obs::InstrumentSample* last_attach =
      after.find("switch.last_attach_cycles", label);
  ASSERT_NE(last_attach, nullptr);
  EXPECT_DOUBLE_EQ(last_attach->value,
                   static_cast<double>(m.engine().stats().last_attach_cycles));
}

// Engine destruction must unregister its callback gauges (no dangling reads).
TEST(SwitchEngine, CallbackGaugesUnregisterWithEngine) {
  std::string label;
  {
    MercuryBox box;
    label = box.mercury->engine().obs_label();
    ASSERT_NE(obs::snapshot().find("switch.attaches", label), nullptr);
  }
  EXPECT_EQ(obs::snapshot().find("switch.attaches", label), nullptr);
}
#endif  // MERCURY_OBS_ENABLED

// Obs-off guard probe (scripts/run_tiers.sh obsoff). Prints the simulated
// attach/detach cost of two fixed scenarios; the obsoff tier runs this test
// in a MERCURY_OBS=ON and a MERCURY_OBS=OFF build and diffs the
// CYCLE_IDENTITY lines. Instrumentation (MERC_SPAN, MERC_FLIGHT, the SLO
// watchdog, postmortem capture) must never charge simulated cycles, so the
// numbers must be byte-identical across the two builds.
TEST(SwitchEngine, CycleIdentityProbe) {
  {
    MercuryBox box({}, /*mem_mb=*/128);
    Mercury& m = *box.mercury;
    ASSERT_TRUE(m.switch_to(ExecMode::kPartialVirtual));
    ASSERT_TRUE(m.switch_to(ExecMode::kNative));
    const core::SwitchStats& st = m.engine().stats();
    ASSERT_GT(st.last_attach_cycles, 0u);
    ASSERT_GT(st.last_detach_cycles, 0u);
    std::printf("CYCLE_IDENTITY up attach=%" PRIu64 " detach=%" PRIu64 "\n",
                st.last_attach_cycles, st.last_detach_cycles);
    // The pause ledger's rendezvous bookkeeping (parked_at_, max_pause) is
    // computed unconditionally; only the ledger record itself is obs-gated,
    // so the max-pause figure must also be build-flavour-invariant.
    std::printf("CYCLE_IDENTITY up.pause max=%" PRIu64 "\n",
                st.last_max_pause_cycles);
  }
  {
    MercuryConfig cfg;
    cfg.switch_config.crew_workers = 3;
    MercuryBox box(cfg, /*mem_mb=*/128, /*cpus=*/4);
    Mercury& m = *box.mercury;
    ASSERT_TRUE(m.switch_to(ExecMode::kPartialVirtual));
    ASSERT_TRUE(m.switch_to(ExecMode::kNative));
    const core::SwitchStats& st = m.engine().stats();
    std::printf("CYCLE_IDENTITY smp attach=%" PRIu64 " detach=%" PRIu64 "\n",
                st.last_attach_cycles, st.last_detach_cycles);
    ASSERT_GT(st.last_max_pause_cycles, 0u);
    std::printf("CYCLE_IDENTITY smp.pause max=%" PRIu64 "\n",
                st.last_max_pause_cycles);
  }
  {
    // Supervised round trip: the supervisor's bookkeeping (hooks, request
    // records, health machine) must also be invisible to the simulated
    // clock in both build flavours.
    MercuryBox box({}, /*mem_mb=*/128);
    Mercury& m = *box.mercury;
    core::SwitchSupervisor sup(m.engine());
    ASSERT_TRUE(sup.switch_now(ExecMode::kPartialVirtual));
    ASSERT_TRUE(sup.switch_now(ExecMode::kNative));
    const core::SwitchStats& st = m.engine().stats();
    std::printf("CYCLE_IDENTITY sup attach=%" PRIu64 " detach=%" PRIu64 "\n",
                st.last_attach_cycles, st.last_detach_cycles);
  }
  {
    // Warm re-attach: the dirty-frame tracker hooks fire on every native
    // PTE/content write while detached, and the warm rebuild walks only the
    // dirty set. Neither the tracker nor the warm metrics may charge
    // simulated cycles, so the retaining detach and the warm attach must
    // also be byte-identical across the two builds.
    MercuryConfig cfg;
    cfg.switch_config.warm_reattach = true;
    MercuryBox box(cfg, /*mem_mb=*/128);
    Mercury& m = *box.mercury;
    m.kernel().spawn("warm-toucher", [](kernel::Sys& s) -> kernel::Sub<void> {
      const auto va = s.mmap(16 * hw::kPageSize, true);
      for (;;) {
        s.touch_pages(va, 16, true);
        co_await s.compute_us(50.0);
      }
    });
    ASSERT_TRUE(m.switch_to(ExecMode::kPartialVirtual));
    ASSERT_TRUE(m.switch_to(ExecMode::kNative));  // retaining detach
    m.kernel().run_for(hw::kCyclesPerMillisecond);  // dirty a fixed window
    ASSERT_TRUE(m.switch_to(ExecMode::kPartialVirtual));
    const core::SwitchStats& st = m.engine().stats();
    ASSERT_EQ(st.warm_attaches, 1u);
    std::printf("CYCLE_IDENTITY warm attach=%" PRIu64 " detach=%" PRIu64
                " dirty=%" PRIu64 "\n",
                st.last_attach_cycles, st.last_detach_cycles,
                st.last_dirty_frames);
  }
}

}  // namespace
}  // namespace mercury::testing
