# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/hw_mem_test[1]_include.cmake")
include("/root/repo/build/tests/hw_mmu_test[1]_include.cmake")
include("/root/repo/build/tests/hw_devices_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_task_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_vm_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_sched_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_fs_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_net_test[1]_include.cmake")
include("/root/repo/build/tests/vmm_page_test[1]_include.cmake")
include("/root/repo/build/tests/vmm_hypervisor_test[1]_include.cmake")
include("/root/repo/build/tests/vmm_migration_test[1]_include.cmake")
include("/root/repo/build/tests/core_switch_test[1]_include.cmake")
include("/root/repo/build/tests/core_transparency_test[1]_include.cmake")
include("/root/repo/build/tests/core_vo_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/pv_test[1]_include.cmake")
include("/root/repo/build/tests/coro_test[1]_include.cmake")
include("/root/repo/build/tests/vmm_splitio_test[1]_include.cmake")
include("/root/repo/build/tests/switch_stress_test[1]_include.cmake")
