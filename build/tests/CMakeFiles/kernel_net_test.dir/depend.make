# Empty dependencies file for kernel_net_test.
# This may be replaced when dependencies are built.
