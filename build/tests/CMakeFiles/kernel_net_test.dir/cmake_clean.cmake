file(REMOVE_RECURSE
  "CMakeFiles/kernel_net_test.dir/kernel_net_test.cpp.o"
  "CMakeFiles/kernel_net_test.dir/kernel_net_test.cpp.o.d"
  "kernel_net_test"
  "kernel_net_test.pdb"
  "kernel_net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
