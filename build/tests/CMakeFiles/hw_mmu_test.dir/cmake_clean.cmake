file(REMOVE_RECURSE
  "CMakeFiles/hw_mmu_test.dir/hw_mmu_test.cpp.o"
  "CMakeFiles/hw_mmu_test.dir/hw_mmu_test.cpp.o.d"
  "hw_mmu_test"
  "hw_mmu_test.pdb"
  "hw_mmu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_mmu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
