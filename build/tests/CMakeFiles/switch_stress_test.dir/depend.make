# Empty dependencies file for switch_stress_test.
# This may be replaced when dependencies are built.
