file(REMOVE_RECURSE
  "CMakeFiles/switch_stress_test.dir/switch_stress_test.cpp.o"
  "CMakeFiles/switch_stress_test.dir/switch_stress_test.cpp.o.d"
  "switch_stress_test"
  "switch_stress_test.pdb"
  "switch_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switch_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
