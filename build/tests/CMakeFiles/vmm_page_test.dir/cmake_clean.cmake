file(REMOVE_RECURSE
  "CMakeFiles/vmm_page_test.dir/vmm_page_test.cpp.o"
  "CMakeFiles/vmm_page_test.dir/vmm_page_test.cpp.o.d"
  "vmm_page_test"
  "vmm_page_test.pdb"
  "vmm_page_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmm_page_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
