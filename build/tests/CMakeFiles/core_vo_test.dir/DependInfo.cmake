
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_vo_test.cpp" "tests/CMakeFiles/core_vo_test.dir/core_vo_test.cpp.o" "gcc" "tests/CMakeFiles/core_vo_test.dir/core_vo_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mercury_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mercury_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mercury_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mercury_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mercury_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mercury_pv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mercury_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mercury_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
