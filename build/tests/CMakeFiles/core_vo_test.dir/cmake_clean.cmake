file(REMOVE_RECURSE
  "CMakeFiles/core_vo_test.dir/core_vo_test.cpp.o"
  "CMakeFiles/core_vo_test.dir/core_vo_test.cpp.o.d"
  "core_vo_test"
  "core_vo_test.pdb"
  "core_vo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_vo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
