# Empty dependencies file for core_vo_test.
# This may be replaced when dependencies are built.
