file(REMOVE_RECURSE
  "CMakeFiles/kernel_fs_test.dir/kernel_fs_test.cpp.o"
  "CMakeFiles/kernel_fs_test.dir/kernel_fs_test.cpp.o.d"
  "kernel_fs_test"
  "kernel_fs_test.pdb"
  "kernel_fs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_fs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
