# Empty compiler generated dependencies file for vmm_splitio_test.
# This may be replaced when dependencies are built.
