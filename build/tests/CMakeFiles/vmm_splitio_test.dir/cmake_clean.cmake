file(REMOVE_RECURSE
  "CMakeFiles/vmm_splitio_test.dir/vmm_splitio_test.cpp.o"
  "CMakeFiles/vmm_splitio_test.dir/vmm_splitio_test.cpp.o.d"
  "vmm_splitio_test"
  "vmm_splitio_test.pdb"
  "vmm_splitio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmm_splitio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
