# Empty compiler generated dependencies file for pv_test.
# This may be replaced when dependencies are built.
