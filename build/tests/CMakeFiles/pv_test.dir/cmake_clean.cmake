file(REMOVE_RECURSE
  "CMakeFiles/pv_test.dir/pv_test.cpp.o"
  "CMakeFiles/pv_test.dir/pv_test.cpp.o.d"
  "pv_test"
  "pv_test.pdb"
  "pv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
