# Empty dependencies file for hw_mem_test.
# This may be replaced when dependencies are built.
