file(REMOVE_RECURSE
  "CMakeFiles/hw_mem_test.dir/hw_mem_test.cpp.o"
  "CMakeFiles/hw_mem_test.dir/hw_mem_test.cpp.o.d"
  "hw_mem_test"
  "hw_mem_test.pdb"
  "hw_mem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_mem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
