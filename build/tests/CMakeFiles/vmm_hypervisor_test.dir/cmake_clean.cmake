file(REMOVE_RECURSE
  "CMakeFiles/vmm_hypervisor_test.dir/vmm_hypervisor_test.cpp.o"
  "CMakeFiles/vmm_hypervisor_test.dir/vmm_hypervisor_test.cpp.o.d"
  "vmm_hypervisor_test"
  "vmm_hypervisor_test.pdb"
  "vmm_hypervisor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmm_hypervisor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
