# Empty dependencies file for core_switch_test.
# This may be replaced when dependencies are built.
