file(REMOVE_RECURSE
  "CMakeFiles/core_switch_test.dir/core_switch_test.cpp.o"
  "CMakeFiles/core_switch_test.dir/core_switch_test.cpp.o.d"
  "core_switch_test"
  "core_switch_test.pdb"
  "core_switch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_switch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
