# Empty dependencies file for kernel_vm_test.
# This may be replaced when dependencies are built.
