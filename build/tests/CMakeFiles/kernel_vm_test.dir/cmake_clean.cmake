file(REMOVE_RECURSE
  "CMakeFiles/kernel_vm_test.dir/kernel_vm_test.cpp.o"
  "CMakeFiles/kernel_vm_test.dir/kernel_vm_test.cpp.o.d"
  "kernel_vm_test"
  "kernel_vm_test.pdb"
  "kernel_vm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_vm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
