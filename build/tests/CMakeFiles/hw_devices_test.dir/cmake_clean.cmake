file(REMOVE_RECURSE
  "CMakeFiles/hw_devices_test.dir/hw_devices_test.cpp.o"
  "CMakeFiles/hw_devices_test.dir/hw_devices_test.cpp.o.d"
  "hw_devices_test"
  "hw_devices_test.pdb"
  "hw_devices_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_devices_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
