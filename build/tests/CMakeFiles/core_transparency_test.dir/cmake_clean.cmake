file(REMOVE_RECURSE
  "CMakeFiles/core_transparency_test.dir/core_transparency_test.cpp.o"
  "CMakeFiles/core_transparency_test.dir/core_transparency_test.cpp.o.d"
  "core_transparency_test"
  "core_transparency_test.pdb"
  "core_transparency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_transparency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
