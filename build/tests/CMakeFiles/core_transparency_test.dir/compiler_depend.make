# Empty compiler generated dependencies file for core_transparency_test.
# This may be replaced when dependencies are built.
