file(REMOVE_RECURSE
  "libmercury_hw.a"
)
