
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cpu.cpp" "src/CMakeFiles/mercury_hw.dir/hw/cpu.cpp.o" "gcc" "src/CMakeFiles/mercury_hw.dir/hw/cpu.cpp.o.d"
  "/root/repo/src/hw/devices/disk.cpp" "src/CMakeFiles/mercury_hw.dir/hw/devices/disk.cpp.o" "gcc" "src/CMakeFiles/mercury_hw.dir/hw/devices/disk.cpp.o.d"
  "/root/repo/src/hw/devices/nic.cpp" "src/CMakeFiles/mercury_hw.dir/hw/devices/nic.cpp.o" "gcc" "src/CMakeFiles/mercury_hw.dir/hw/devices/nic.cpp.o.d"
  "/root/repo/src/hw/devices/sensors.cpp" "src/CMakeFiles/mercury_hw.dir/hw/devices/sensors.cpp.o" "gcc" "src/CMakeFiles/mercury_hw.dir/hw/devices/sensors.cpp.o.d"
  "/root/repo/src/hw/frame_alloc.cpp" "src/CMakeFiles/mercury_hw.dir/hw/frame_alloc.cpp.o" "gcc" "src/CMakeFiles/mercury_hw.dir/hw/frame_alloc.cpp.o.d"
  "/root/repo/src/hw/interrupts.cpp" "src/CMakeFiles/mercury_hw.dir/hw/interrupts.cpp.o" "gcc" "src/CMakeFiles/mercury_hw.dir/hw/interrupts.cpp.o.d"
  "/root/repo/src/hw/machine.cpp" "src/CMakeFiles/mercury_hw.dir/hw/machine.cpp.o" "gcc" "src/CMakeFiles/mercury_hw.dir/hw/machine.cpp.o.d"
  "/root/repo/src/hw/mmu.cpp" "src/CMakeFiles/mercury_hw.dir/hw/mmu.cpp.o" "gcc" "src/CMakeFiles/mercury_hw.dir/hw/mmu.cpp.o.d"
  "/root/repo/src/hw/phys_mem.cpp" "src/CMakeFiles/mercury_hw.dir/hw/phys_mem.cpp.o" "gcc" "src/CMakeFiles/mercury_hw.dir/hw/phys_mem.cpp.o.d"
  "/root/repo/src/hw/tlb.cpp" "src/CMakeFiles/mercury_hw.dir/hw/tlb.cpp.o" "gcc" "src/CMakeFiles/mercury_hw.dir/hw/tlb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mercury_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
