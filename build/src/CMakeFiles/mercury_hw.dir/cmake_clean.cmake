file(REMOVE_RECURSE
  "CMakeFiles/mercury_hw.dir/hw/cpu.cpp.o"
  "CMakeFiles/mercury_hw.dir/hw/cpu.cpp.o.d"
  "CMakeFiles/mercury_hw.dir/hw/devices/disk.cpp.o"
  "CMakeFiles/mercury_hw.dir/hw/devices/disk.cpp.o.d"
  "CMakeFiles/mercury_hw.dir/hw/devices/nic.cpp.o"
  "CMakeFiles/mercury_hw.dir/hw/devices/nic.cpp.o.d"
  "CMakeFiles/mercury_hw.dir/hw/devices/sensors.cpp.o"
  "CMakeFiles/mercury_hw.dir/hw/devices/sensors.cpp.o.d"
  "CMakeFiles/mercury_hw.dir/hw/frame_alloc.cpp.o"
  "CMakeFiles/mercury_hw.dir/hw/frame_alloc.cpp.o.d"
  "CMakeFiles/mercury_hw.dir/hw/interrupts.cpp.o"
  "CMakeFiles/mercury_hw.dir/hw/interrupts.cpp.o.d"
  "CMakeFiles/mercury_hw.dir/hw/machine.cpp.o"
  "CMakeFiles/mercury_hw.dir/hw/machine.cpp.o.d"
  "CMakeFiles/mercury_hw.dir/hw/mmu.cpp.o"
  "CMakeFiles/mercury_hw.dir/hw/mmu.cpp.o.d"
  "CMakeFiles/mercury_hw.dir/hw/phys_mem.cpp.o"
  "CMakeFiles/mercury_hw.dir/hw/phys_mem.cpp.o.d"
  "CMakeFiles/mercury_hw.dir/hw/tlb.cpp.o"
  "CMakeFiles/mercury_hw.dir/hw/tlb.cpp.o.d"
  "libmercury_hw.a"
  "libmercury_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
