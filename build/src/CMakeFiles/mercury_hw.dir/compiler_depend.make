# Empty compiler generated dependencies file for mercury_hw.
# This may be replaced when dependencies are built.
