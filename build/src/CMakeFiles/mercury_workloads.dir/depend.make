# Empty dependencies file for mercury_workloads.
# This may be replaced when dependencies are built.
