file(REMOVE_RECURSE
  "libmercury_workloads.a"
)
