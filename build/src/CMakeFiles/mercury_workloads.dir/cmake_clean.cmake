file(REMOVE_RECURSE
  "CMakeFiles/mercury_workloads.dir/workloads/configs.cpp.o"
  "CMakeFiles/mercury_workloads.dir/workloads/configs.cpp.o.d"
  "CMakeFiles/mercury_workloads.dir/workloads/dbench.cpp.o"
  "CMakeFiles/mercury_workloads.dir/workloads/dbench.cpp.o.d"
  "CMakeFiles/mercury_workloads.dir/workloads/kbuild.cpp.o"
  "CMakeFiles/mercury_workloads.dir/workloads/kbuild.cpp.o.d"
  "CMakeFiles/mercury_workloads.dir/workloads/lmbench.cpp.o"
  "CMakeFiles/mercury_workloads.dir/workloads/lmbench.cpp.o.d"
  "CMakeFiles/mercury_workloads.dir/workloads/netperf.cpp.o"
  "CMakeFiles/mercury_workloads.dir/workloads/netperf.cpp.o.d"
  "CMakeFiles/mercury_workloads.dir/workloads/osdb.cpp.o"
  "CMakeFiles/mercury_workloads.dir/workloads/osdb.cpp.o.d"
  "libmercury_workloads.a"
  "libmercury_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
