
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/configs.cpp" "src/CMakeFiles/mercury_workloads.dir/workloads/configs.cpp.o" "gcc" "src/CMakeFiles/mercury_workloads.dir/workloads/configs.cpp.o.d"
  "/root/repo/src/workloads/dbench.cpp" "src/CMakeFiles/mercury_workloads.dir/workloads/dbench.cpp.o" "gcc" "src/CMakeFiles/mercury_workloads.dir/workloads/dbench.cpp.o.d"
  "/root/repo/src/workloads/kbuild.cpp" "src/CMakeFiles/mercury_workloads.dir/workloads/kbuild.cpp.o" "gcc" "src/CMakeFiles/mercury_workloads.dir/workloads/kbuild.cpp.o.d"
  "/root/repo/src/workloads/lmbench.cpp" "src/CMakeFiles/mercury_workloads.dir/workloads/lmbench.cpp.o" "gcc" "src/CMakeFiles/mercury_workloads.dir/workloads/lmbench.cpp.o.d"
  "/root/repo/src/workloads/netperf.cpp" "src/CMakeFiles/mercury_workloads.dir/workloads/netperf.cpp.o" "gcc" "src/CMakeFiles/mercury_workloads.dir/workloads/netperf.cpp.o.d"
  "/root/repo/src/workloads/osdb.cpp" "src/CMakeFiles/mercury_workloads.dir/workloads/osdb.cpp.o" "gcc" "src/CMakeFiles/mercury_workloads.dir/workloads/osdb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mercury_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mercury_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mercury_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mercury_pv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mercury_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mercury_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
