file(REMOVE_RECURSE
  "CMakeFiles/mercury_pv.dir/pv/direct_ops.cpp.o"
  "CMakeFiles/mercury_pv.dir/pv/direct_ops.cpp.o.d"
  "libmercury_pv.a"
  "libmercury_pv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_pv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
