file(REMOVE_RECURSE
  "libmercury_pv.a"
)
