# Empty dependencies file for mercury_pv.
# This may be replaced when dependencies are built.
