
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/eager_tracker.cpp" "src/CMakeFiles/mercury_core.dir/core/eager_tracker.cpp.o" "gcc" "src/CMakeFiles/mercury_core.dir/core/eager_tracker.cpp.o.d"
  "/root/repo/src/core/mercury.cpp" "src/CMakeFiles/mercury_core.dir/core/mercury.cpp.o" "gcc" "src/CMakeFiles/mercury_core.dir/core/mercury.cpp.o.d"
  "/root/repo/src/core/native_vo.cpp" "src/CMakeFiles/mercury_core.dir/core/native_vo.cpp.o" "gcc" "src/CMakeFiles/mercury_core.dir/core/native_vo.cpp.o.d"
  "/root/repo/src/core/rendezvous.cpp" "src/CMakeFiles/mercury_core.dir/core/rendezvous.cpp.o" "gcc" "src/CMakeFiles/mercury_core.dir/core/rendezvous.cpp.o.d"
  "/root/repo/src/core/stack_fixup.cpp" "src/CMakeFiles/mercury_core.dir/core/stack_fixup.cpp.o" "gcc" "src/CMakeFiles/mercury_core.dir/core/stack_fixup.cpp.o.d"
  "/root/repo/src/core/state_transfer.cpp" "src/CMakeFiles/mercury_core.dir/core/state_transfer.cpp.o" "gcc" "src/CMakeFiles/mercury_core.dir/core/state_transfer.cpp.o.d"
  "/root/repo/src/core/switch_engine.cpp" "src/CMakeFiles/mercury_core.dir/core/switch_engine.cpp.o" "gcc" "src/CMakeFiles/mercury_core.dir/core/switch_engine.cpp.o.d"
  "/root/repo/src/core/virt_object.cpp" "src/CMakeFiles/mercury_core.dir/core/virt_object.cpp.o" "gcc" "src/CMakeFiles/mercury_core.dir/core/virt_object.cpp.o.d"
  "/root/repo/src/core/virtual_vo.cpp" "src/CMakeFiles/mercury_core.dir/core/virtual_vo.cpp.o" "gcc" "src/CMakeFiles/mercury_core.dir/core/virtual_vo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mercury_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mercury_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mercury_pv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mercury_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mercury_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
