file(REMOVE_RECURSE
  "CMakeFiles/mercury_core.dir/core/eager_tracker.cpp.o"
  "CMakeFiles/mercury_core.dir/core/eager_tracker.cpp.o.d"
  "CMakeFiles/mercury_core.dir/core/mercury.cpp.o"
  "CMakeFiles/mercury_core.dir/core/mercury.cpp.o.d"
  "CMakeFiles/mercury_core.dir/core/native_vo.cpp.o"
  "CMakeFiles/mercury_core.dir/core/native_vo.cpp.o.d"
  "CMakeFiles/mercury_core.dir/core/rendezvous.cpp.o"
  "CMakeFiles/mercury_core.dir/core/rendezvous.cpp.o.d"
  "CMakeFiles/mercury_core.dir/core/stack_fixup.cpp.o"
  "CMakeFiles/mercury_core.dir/core/stack_fixup.cpp.o.d"
  "CMakeFiles/mercury_core.dir/core/state_transfer.cpp.o"
  "CMakeFiles/mercury_core.dir/core/state_transfer.cpp.o.d"
  "CMakeFiles/mercury_core.dir/core/switch_engine.cpp.o"
  "CMakeFiles/mercury_core.dir/core/switch_engine.cpp.o.d"
  "CMakeFiles/mercury_core.dir/core/virt_object.cpp.o"
  "CMakeFiles/mercury_core.dir/core/virt_object.cpp.o.d"
  "CMakeFiles/mercury_core.dir/core/virtual_vo.cpp.o"
  "CMakeFiles/mercury_core.dir/core/virtual_vo.cpp.o.d"
  "libmercury_core.a"
  "libmercury_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
