# Empty dependencies file for mercury_core.
# This may be replaced when dependencies are built.
