file(REMOVE_RECURSE
  "libmercury_kernel.a"
)
