# Empty compiler generated dependencies file for mercury_kernel.
# This may be replaced when dependencies are built.
