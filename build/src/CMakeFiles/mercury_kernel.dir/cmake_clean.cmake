file(REMOVE_RECURSE
  "CMakeFiles/mercury_kernel.dir/kernel/addr_space.cpp.o"
  "CMakeFiles/mercury_kernel.dir/kernel/addr_space.cpp.o.d"
  "CMakeFiles/mercury_kernel.dir/kernel/fs/block_cache.cpp.o"
  "CMakeFiles/mercury_kernel.dir/kernel/fs/block_cache.cpp.o.d"
  "CMakeFiles/mercury_kernel.dir/kernel/fs/minifs.cpp.o"
  "CMakeFiles/mercury_kernel.dir/kernel/fs/minifs.cpp.o.d"
  "CMakeFiles/mercury_kernel.dir/kernel/kernel.cpp.o"
  "CMakeFiles/mercury_kernel.dir/kernel/kernel.cpp.o.d"
  "CMakeFiles/mercury_kernel.dir/kernel/net/stack.cpp.o"
  "CMakeFiles/mercury_kernel.dir/kernel/net/stack.cpp.o.d"
  "CMakeFiles/mercury_kernel.dir/kernel/syscalls.cpp.o"
  "CMakeFiles/mercury_kernel.dir/kernel/syscalls.cpp.o.d"
  "CMakeFiles/mercury_kernel.dir/kernel/task.cpp.o"
  "CMakeFiles/mercury_kernel.dir/kernel/task.cpp.o.d"
  "libmercury_kernel.a"
  "libmercury_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
