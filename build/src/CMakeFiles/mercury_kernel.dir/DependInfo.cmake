
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/addr_space.cpp" "src/CMakeFiles/mercury_kernel.dir/kernel/addr_space.cpp.o" "gcc" "src/CMakeFiles/mercury_kernel.dir/kernel/addr_space.cpp.o.d"
  "/root/repo/src/kernel/fs/block_cache.cpp" "src/CMakeFiles/mercury_kernel.dir/kernel/fs/block_cache.cpp.o" "gcc" "src/CMakeFiles/mercury_kernel.dir/kernel/fs/block_cache.cpp.o.d"
  "/root/repo/src/kernel/fs/minifs.cpp" "src/CMakeFiles/mercury_kernel.dir/kernel/fs/minifs.cpp.o" "gcc" "src/CMakeFiles/mercury_kernel.dir/kernel/fs/minifs.cpp.o.d"
  "/root/repo/src/kernel/kernel.cpp" "src/CMakeFiles/mercury_kernel.dir/kernel/kernel.cpp.o" "gcc" "src/CMakeFiles/mercury_kernel.dir/kernel/kernel.cpp.o.d"
  "/root/repo/src/kernel/net/stack.cpp" "src/CMakeFiles/mercury_kernel.dir/kernel/net/stack.cpp.o" "gcc" "src/CMakeFiles/mercury_kernel.dir/kernel/net/stack.cpp.o.d"
  "/root/repo/src/kernel/syscalls.cpp" "src/CMakeFiles/mercury_kernel.dir/kernel/syscalls.cpp.o" "gcc" "src/CMakeFiles/mercury_kernel.dir/kernel/syscalls.cpp.o.d"
  "/root/repo/src/kernel/task.cpp" "src/CMakeFiles/mercury_kernel.dir/kernel/task.cpp.o" "gcc" "src/CMakeFiles/mercury_kernel.dir/kernel/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mercury_pv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mercury_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mercury_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
