# Empty dependencies file for mercury_cluster.
# This may be replaced when dependencies are built.
