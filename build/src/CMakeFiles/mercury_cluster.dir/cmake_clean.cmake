file(REMOVE_RECURSE
  "CMakeFiles/mercury_cluster.dir/cluster/availability.cpp.o"
  "CMakeFiles/mercury_cluster.dir/cluster/availability.cpp.o.d"
  "CMakeFiles/mercury_cluster.dir/cluster/fabric.cpp.o"
  "CMakeFiles/mercury_cluster.dir/cluster/fabric.cpp.o.d"
  "CMakeFiles/mercury_cluster.dir/cluster/failure.cpp.o"
  "CMakeFiles/mercury_cluster.dir/cluster/failure.cpp.o.d"
  "CMakeFiles/mercury_cluster.dir/cluster/node.cpp.o"
  "CMakeFiles/mercury_cluster.dir/cluster/node.cpp.o.d"
  "CMakeFiles/mercury_cluster.dir/cluster/scenarios.cpp.o"
  "CMakeFiles/mercury_cluster.dir/cluster/scenarios.cpp.o.d"
  "libmercury_cluster.a"
  "libmercury_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
