
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/availability.cpp" "src/CMakeFiles/mercury_cluster.dir/cluster/availability.cpp.o" "gcc" "src/CMakeFiles/mercury_cluster.dir/cluster/availability.cpp.o.d"
  "/root/repo/src/cluster/fabric.cpp" "src/CMakeFiles/mercury_cluster.dir/cluster/fabric.cpp.o" "gcc" "src/CMakeFiles/mercury_cluster.dir/cluster/fabric.cpp.o.d"
  "/root/repo/src/cluster/failure.cpp" "src/CMakeFiles/mercury_cluster.dir/cluster/failure.cpp.o" "gcc" "src/CMakeFiles/mercury_cluster.dir/cluster/failure.cpp.o.d"
  "/root/repo/src/cluster/node.cpp" "src/CMakeFiles/mercury_cluster.dir/cluster/node.cpp.o" "gcc" "src/CMakeFiles/mercury_cluster.dir/cluster/node.cpp.o.d"
  "/root/repo/src/cluster/scenarios.cpp" "src/CMakeFiles/mercury_cluster.dir/cluster/scenarios.cpp.o" "gcc" "src/CMakeFiles/mercury_cluster.dir/cluster/scenarios.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mercury_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mercury_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mercury_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mercury_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mercury_pv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mercury_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mercury_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
