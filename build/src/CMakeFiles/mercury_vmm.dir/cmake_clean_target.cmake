file(REMOVE_RECURSE
  "libmercury_vmm.a"
)
