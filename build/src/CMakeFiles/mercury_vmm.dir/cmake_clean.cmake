file(REMOVE_RECURSE
  "CMakeFiles/mercury_vmm.dir/vmm/blkif.cpp.o"
  "CMakeFiles/mercury_vmm.dir/vmm/blkif.cpp.o.d"
  "CMakeFiles/mercury_vmm.dir/vmm/checkpoint.cpp.o"
  "CMakeFiles/mercury_vmm.dir/vmm/checkpoint.cpp.o.d"
  "CMakeFiles/mercury_vmm.dir/vmm/domain.cpp.o"
  "CMakeFiles/mercury_vmm.dir/vmm/domain.cpp.o.d"
  "CMakeFiles/mercury_vmm.dir/vmm/event_channel.cpp.o"
  "CMakeFiles/mercury_vmm.dir/vmm/event_channel.cpp.o.d"
  "CMakeFiles/mercury_vmm.dir/vmm/grant_table.cpp.o"
  "CMakeFiles/mercury_vmm.dir/vmm/grant_table.cpp.o.d"
  "CMakeFiles/mercury_vmm.dir/vmm/hypercalls.cpp.o"
  "CMakeFiles/mercury_vmm.dir/vmm/hypercalls.cpp.o.d"
  "CMakeFiles/mercury_vmm.dir/vmm/hypervisor.cpp.o"
  "CMakeFiles/mercury_vmm.dir/vmm/hypervisor.cpp.o.d"
  "CMakeFiles/mercury_vmm.dir/vmm/migrate.cpp.o"
  "CMakeFiles/mercury_vmm.dir/vmm/migrate.cpp.o.d"
  "CMakeFiles/mercury_vmm.dir/vmm/netif.cpp.o"
  "CMakeFiles/mercury_vmm.dir/vmm/netif.cpp.o.d"
  "CMakeFiles/mercury_vmm.dir/vmm/page_info.cpp.o"
  "CMakeFiles/mercury_vmm.dir/vmm/page_info.cpp.o.d"
  "libmercury_vmm.a"
  "libmercury_vmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_vmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
