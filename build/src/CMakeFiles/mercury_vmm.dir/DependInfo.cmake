
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vmm/blkif.cpp" "src/CMakeFiles/mercury_vmm.dir/vmm/blkif.cpp.o" "gcc" "src/CMakeFiles/mercury_vmm.dir/vmm/blkif.cpp.o.d"
  "/root/repo/src/vmm/checkpoint.cpp" "src/CMakeFiles/mercury_vmm.dir/vmm/checkpoint.cpp.o" "gcc" "src/CMakeFiles/mercury_vmm.dir/vmm/checkpoint.cpp.o.d"
  "/root/repo/src/vmm/domain.cpp" "src/CMakeFiles/mercury_vmm.dir/vmm/domain.cpp.o" "gcc" "src/CMakeFiles/mercury_vmm.dir/vmm/domain.cpp.o.d"
  "/root/repo/src/vmm/event_channel.cpp" "src/CMakeFiles/mercury_vmm.dir/vmm/event_channel.cpp.o" "gcc" "src/CMakeFiles/mercury_vmm.dir/vmm/event_channel.cpp.o.d"
  "/root/repo/src/vmm/grant_table.cpp" "src/CMakeFiles/mercury_vmm.dir/vmm/grant_table.cpp.o" "gcc" "src/CMakeFiles/mercury_vmm.dir/vmm/grant_table.cpp.o.d"
  "/root/repo/src/vmm/hypercalls.cpp" "src/CMakeFiles/mercury_vmm.dir/vmm/hypercalls.cpp.o" "gcc" "src/CMakeFiles/mercury_vmm.dir/vmm/hypercalls.cpp.o.d"
  "/root/repo/src/vmm/hypervisor.cpp" "src/CMakeFiles/mercury_vmm.dir/vmm/hypervisor.cpp.o" "gcc" "src/CMakeFiles/mercury_vmm.dir/vmm/hypervisor.cpp.o.d"
  "/root/repo/src/vmm/migrate.cpp" "src/CMakeFiles/mercury_vmm.dir/vmm/migrate.cpp.o" "gcc" "src/CMakeFiles/mercury_vmm.dir/vmm/migrate.cpp.o.d"
  "/root/repo/src/vmm/netif.cpp" "src/CMakeFiles/mercury_vmm.dir/vmm/netif.cpp.o" "gcc" "src/CMakeFiles/mercury_vmm.dir/vmm/netif.cpp.o.d"
  "/root/repo/src/vmm/page_info.cpp" "src/CMakeFiles/mercury_vmm.dir/vmm/page_info.cpp.o" "gcc" "src/CMakeFiles/mercury_vmm.dir/vmm/page_info.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mercury_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mercury_pv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mercury_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mercury_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
