# Empty dependencies file for mercury_vmm.
# This may be replaced when dependencies are built.
