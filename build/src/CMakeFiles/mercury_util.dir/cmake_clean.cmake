file(REMOVE_RECURSE
  "CMakeFiles/mercury_util.dir/util/log.cpp.o"
  "CMakeFiles/mercury_util.dir/util/log.cpp.o.d"
  "CMakeFiles/mercury_util.dir/util/rng.cpp.o"
  "CMakeFiles/mercury_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/mercury_util.dir/util/stats.cpp.o"
  "CMakeFiles/mercury_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/mercury_util.dir/util/table.cpp.o"
  "CMakeFiles/mercury_util.dir/util/table.cpp.o.d"
  "libmercury_util.a"
  "libmercury_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mercury_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
