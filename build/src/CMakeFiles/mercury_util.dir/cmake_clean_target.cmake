file(REMOVE_RECURSE
  "libmercury_util.a"
)
