# Empty dependencies file for online_maintenance.
# This may be replaced when dependencies are built.
