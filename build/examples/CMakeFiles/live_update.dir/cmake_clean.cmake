file(REMOVE_RECURSE
  "CMakeFiles/live_update.dir/live_update.cpp.o"
  "CMakeFiles/live_update.dir/live_update.cpp.o.d"
  "live_update"
  "live_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
