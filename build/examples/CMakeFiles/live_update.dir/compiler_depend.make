# Empty compiler generated dependencies file for live_update.
# This may be replaced when dependencies are built.
