file(REMOVE_RECURSE
  "CMakeFiles/hpc_failover.dir/hpc_failover.cpp.o"
  "CMakeFiles/hpc_failover.dir/hpc_failover.cpp.o.d"
  "hpc_failover"
  "hpc_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
