# Empty dependencies file for hpc_failover.
# This may be replaced when dependencies are built.
