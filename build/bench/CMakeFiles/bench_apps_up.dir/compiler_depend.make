# Empty compiler generated dependencies file for bench_apps_up.
# This may be replaced when dependencies are built.
