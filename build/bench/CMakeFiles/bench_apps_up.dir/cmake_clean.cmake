file(REMOVE_RECURSE
  "CMakeFiles/bench_apps_up.dir/bench_apps_up.cpp.o"
  "CMakeFiles/bench_apps_up.dir/bench_apps_up.cpp.o.d"
  "bench_apps_up"
  "bench_apps_up.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_apps_up.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
