# Empty compiler generated dependencies file for bench_rendezvous.
# This may be replaced when dependencies are built.
