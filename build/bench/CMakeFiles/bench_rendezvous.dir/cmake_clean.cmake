file(REMOVE_RECURSE
  "CMakeFiles/bench_rendezvous.dir/bench_rendezvous.cpp.o"
  "CMakeFiles/bench_rendezvous.dir/bench_rendezvous.cpp.o.d"
  "bench_rendezvous"
  "bench_rendezvous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rendezvous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
