file(REMOVE_RECURSE
  "CMakeFiles/bench_modeswitch.dir/bench_modeswitch.cpp.o"
  "CMakeFiles/bench_modeswitch.dir/bench_modeswitch.cpp.o.d"
  "bench_modeswitch"
  "bench_modeswitch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_modeswitch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
