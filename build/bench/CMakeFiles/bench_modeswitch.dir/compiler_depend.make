# Empty compiler generated dependencies file for bench_modeswitch.
# This may be replaced when dependencies are built.
