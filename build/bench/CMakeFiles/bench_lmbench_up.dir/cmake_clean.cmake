file(REMOVE_RECURSE
  "CMakeFiles/bench_lmbench_up.dir/bench_lmbench_up.cpp.o"
  "CMakeFiles/bench_lmbench_up.dir/bench_lmbench_up.cpp.o.d"
  "bench_lmbench_up"
  "bench_lmbench_up.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lmbench_up.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
