# Empty compiler generated dependencies file for bench_lmbench_up.
# This may be replaced when dependencies are built.
