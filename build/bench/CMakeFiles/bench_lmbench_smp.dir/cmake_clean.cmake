file(REMOVE_RECURSE
  "CMakeFiles/bench_lmbench_smp.dir/bench_lmbench_smp.cpp.o"
  "CMakeFiles/bench_lmbench_smp.dir/bench_lmbench_smp.cpp.o.d"
  "bench_lmbench_smp"
  "bench_lmbench_smp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lmbench_smp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
