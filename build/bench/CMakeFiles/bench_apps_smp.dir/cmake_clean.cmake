file(REMOVE_RECURSE
  "CMakeFiles/bench_apps_smp.dir/bench_apps_smp.cpp.o"
  "CMakeFiles/bench_apps_smp.dir/bench_apps_smp.cpp.o.d"
  "bench_apps_smp"
  "bench_apps_smp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_apps_smp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
