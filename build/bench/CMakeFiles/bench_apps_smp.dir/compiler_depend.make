# Empty compiler generated dependencies file for bench_apps_smp.
# This may be replaced when dependencies are built.
