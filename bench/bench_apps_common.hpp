// Shared driver for Fig.3 (UP) and Fig.4 (SMP): run the five application
// benchmarks on all six systems and print relative performance normalized
// to native Linux (the paper's bar charts).
#pragma once

#include <cstdio>

#include "bench_util.hpp"
#include "workloads/dbench.hpp"
#include "workloads/kbuild.hpp"
#include "workloads/netperf.hpp"
#include "workloads/osdb.hpp"

namespace mercury::bench {

struct AppScores {
  // Higher is better for all (throughput or inverse time).
  double osdb_qps = 0;
  double dbench_mbs = 0;
  double kbuild_inv = 0;  // 1/build_seconds
  double ping_inv = 0;    // 1/rtt_us
  double iperf_mbit = 0;
};

inline AppScores run_apps(SystemId id, std::size_t cpus) {
  // Relative figures: the workload sizes only need to be large enough for
  // stable ratios. SMP stepping is host-slower, so scale down there.
  const double scale = cpus > 1 ? 0.4 : 1.0;
  AppScores out;
  {
    auto sut = Sut::create(id, paper_params(cpus));
    workloads::OsdbParams p;
    p.queries = static_cast<int>(p.queries * scale);
    out.osdb_qps = workloads::Osdb::run(sut->kernel(), p).queries_per_sec;
  }
  {
    auto sut = Sut::create(id, paper_params(cpus));
    workloads::DbenchParams p;
    p.loops_per_client = std::max(12, static_cast<int>(p.loops_per_client * scale));
    out.dbench_mbs = workloads::Dbench::run(sut->kernel(), p).throughput_mb_s;
  }
  {
    auto sut = Sut::create(id, paper_params(cpus));
    workloads::KbuildParams p;
    p.translation_units =
        std::max(6, static_cast<int>(p.translation_units * scale));
    out.kbuild_inv =
        1.0 / workloads::Kbuild::run(sut->kernel(), p).build_seconds;
  }
  {
    // ping/iperf are single-stream: the paper's SMP results match its UP
    // results for them, and the two-machine co-simulation steps far faster
    // with a single client CPU, so the network rows always use one.
    auto sut = Sut::create(id, paper_params(1));
    workloads::PeerHost peer;
    peer.connect_to(sut->machine());
    workloads::NetperfParams p;
    p.iperf_bytes = static_cast<std::size_t>(p.iperf_bytes * scale);
    const auto net = workloads::Netperf::run(sut->kernel(), peer, p);
    out.ping_inv = net.ping_rtt_us > 0 ? 1.0 / net.ping_rtt_us : 0.0;
    out.iperf_mbit = net.tcp_mbit_s;
  }
  return out;
}

struct FigReference {
  const char* label;
  double nl, mn, x0, mv, xu, mu;
};

/// Paper Fig.3 (UP) relative performance, read off the described results:
/// dbench X-0 -15%, X-U +5%; kernel build ~ -9% both; OSDB-IR >20% loss;
/// ping -20%/-60%; iperf -40%/-70%; all M-* within 2% of their counterparts.
inline const std::vector<FigReference>& fig3_reference() {
  static const std::vector<FigReference> rows = {
      {"OSDB-IR", 1.00, 0.99, 0.79, 0.78, 0.79, 0.79},
      {"dbench", 1.00, 0.99, 0.85, 0.84, 1.05, 1.04},
      {"kbuild", 1.00, 0.99, 0.91, 0.90, 0.91, 0.91},
      {"ping", 1.00, 0.99, 0.79, 0.78, 0.39, 0.39},
      {"iperf", 1.00, 0.99, 0.59, 0.58, 0.29, 0.29},
  };
  return rows;
}

inline const std::vector<FigReference>& fig4_reference() {
  static const std::vector<FigReference> rows = {
      {"OSDB-IR", 1.00, 0.99, 0.80, 0.79, 0.80, 0.80},
      {"dbench", 1.00, 0.99, 0.86, 0.85, 1.04, 1.03},
      {"kbuild", 1.00, 0.99, 0.91, 0.91, 0.91, 0.91},
      {"ping", 1.00, 0.99, 0.80, 0.79, 0.40, 0.40},
      {"iperf", 1.00, 0.99, 0.60, 0.59, 0.30, 0.30},
  };
  return rows;
}

inline void run_fig(const char* title, std::size_t cpus,
                    const std::vector<FigReference>& reference) {
  std::map<SystemId, AppScores> scores;
  for (const SystemId id : mercury::workloads::kAllSystems)
    scores[id] = run_apps(id, cpus);

  const AppScores& base = scores[SystemId::kNL];
  CellResults rel;
  for (const SystemId id : mercury::workloads::kAllSystems) {
    const AppScores& s = scores[id];
    rel.set("OSDB-IR", id, s.osdb_qps / base.osdb_qps);
    rel.set("dbench", id, s.dbench_mbs / base.dbench_mbs);
    rel.set("kbuild", id, s.kbuild_inv / base.kbuild_inv);
    rel.set("ping", id, s.ping_inv / base.ping_inv);
    rel.set("iperf", id, s.iperf_mbit / base.iperf_mbit);
  }

  std::printf("\n=== %s: relative performance vs N-L — measured ===\n%s\n",
              title, render_results(rel, 3).c_str());

  util::Table ref({"Workload", "N-L", "M-N", "X-0", "M-V", "X-U", "M-U"});
  for (const auto& row : reference)
    ref.add_numeric_row(row.label, {row.nl, row.mn, row.x0, row.mv, row.xu,
                                    row.mu}, 2);
  std::printf("=== %s: paper (approximate, read from Fig) ===\n%s\n", title,
              ref.render().c_str());

  std::printf("Raw N-L anchors: OSDB %.1f q/s, dbench %.1f MB/s, kbuild %.2f s, "
              "ping RTT %.1f us, iperf %.0f Mbit/s\n",
              base.osdb_qps, base.dbench_mbs, 1.0 / base.kbuild_inv,
              1.0 / base.ping_inv, base.iperf_mbit);
}

}  // namespace mercury::bench
