// Fig.4 reproduction: application-level relative performance, SMP (2 CPUs).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include "bench_apps_common.hpp"

namespace {

void BM_KbuildSmpNative(benchmark::State& state) {
  for (auto _ : state) {
    auto sut = mercury::bench::Sut::create(mercury::bench::SystemId::kNL,
                                           mercury::bench::paper_params(2));
    const auto r = mercury::workloads::Kbuild::run(sut->kernel());
    state.counters["sim_build_s"] = r.build_seconds;
  }
}
BENCHMARK(BM_KbuildSmpNative)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  const mercury::bench::ObsOptions obs_opts =
      mercury::bench::consume_obs_flags(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  mercury::bench::run_fig("Fig.4 (SMP, 2 CPUs)", 2,
                          mercury::bench::fig4_reference());
  mercury::bench::write_obs_artifacts(obs_opts);
  return 0;
}
