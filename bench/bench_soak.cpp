// Chaos-soak bench: supervised attach/detach cycles under a seeded fault
// storm while a dbench fileserver mix hammers the same kernel — the
// robustness counterpart of bench_modeswitch. Reports availability, retry
// and quarantine counts, and (with --soak-json <path>) emits the same
// machine-checkable mercury.soak.v1 verdict the soak CI job gates on:
//
//   bench_soak --soak-json soak.json [--metrics-json m.json]
//   python3 scripts/check_bench_json.py soak.json --schema soak
//
// With --timeseries-json and/or --profile-json the bench additionally runs
// a 4-node ClusterSoak (per-node supervisors, cluster-wide switch waves)
// and emits mercury.timeseries.v1 (per-node sampled series) and
// mercury.profile.v1 (wall/sim attribution of the discrete-event engine):
//
//   bench_soak --timeseries-json ts.json --profile-json prof.json
//   python3 scripts/check_bench_json.py ts.json --schema timeseries
//   python3 scripts/check_bench_json.py prof.json --schema profile
//
// Seeded via MERCURY_TEST_SEED (same convention as the test suite), so a
// failing CI storm replays bit-for-bit.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <cstdio>
#include <cstdlib>

#include "cluster/soak.hpp"
#include "core/fault_inject.hpp"
#include "core/mercury.hpp"
#include "core/switch_supervisor.hpp"
#include "kernel/syscalls.hpp"
#include "workloads/dbench.hpp"

namespace {

using namespace mercury;
using cluster::SoakDriver;
using cluster::SoakParams;
using cluster::SoakReport;
using core::FaultStorm;
using core::SupervisorConfig;

std::uint64_t soak_seed() {
  if (const char* env = std::getenv("MERCURY_TEST_SEED"))
    if (const std::uint64_t s = std::strtoull(env, nullptr, 0)) return s;
  return 0x50AC0BE7ull;
}

struct SoakRunParams {
  std::uint64_t cycles = 120;
  double storm_rate = 0.05;
};

SoakReport run_soak(const SoakRunParams& rp) {
  const std::uint64_t seed = soak_seed();

  hw::MachineConfig mc;
  mc.num_cpus = 4;
  mc.mem_kb = 96 * 1024;
  hw::Machine machine(mc);
  core::MercuryConfig cfg;
  cfg.kernel_frames = (32ull * 1024 * 1024) / hw::kPageSize;
  cfg.switch_config.crew_workers = 3;
  core::Mercury m(machine, cfg);

  SupervisorConfig scfg;
  scfg.backoff_base_ms = 0.5;
  scfg.backoff_cap_ms = 8.0;
  scfg.degraded_after = 3;
  scfg.quarantine_after = 8;
  scfg.probe_interval_ms = 30.0;
  scfg.seed = seed;
  core::SwitchSupervisor sup(m.engine(), scfg);

  FaultStorm storm = FaultStorm::uniform(rp.storm_rate, seed);
  storm.burst_windows = 2;
  storm.decay = 0.97;
  core::fault_injector().arm_storm(storm);

  SoakParams sp;
  sp.cycles = rp.cycles;
  sp.request_interval_ms = 2.0;
  SoakDriver driver(sup, sp);
  driver.start();

  // The workload drives the kernel; soak ticks interleave on its timers.
  workloads::DbenchParams dp;
  dp.clients = 3;
  dp.loops_per_client = 16;
  const workloads::DbenchResult db = workloads::Dbench::run(m.kernel(), dp);

  // Finish whatever switch cycles the fileserver run did not cover.
  driver.run_to_completion(30'000 * hw::kCyclesPerMillisecond);
  core::fault_injector().stop_storm();

  driver.note_workload(db.bytes_moved / (dp.chunk_kb * 1024), db.bytes_moved,
                       0);
  return driver.report(seed);
}

SoakReport g_last;
bool g_have_last = false;

const SoakReport& last_report(const SoakRunParams& rp = {}) {
  if (!g_have_last) {
    g_last = run_soak(rp);
    g_have_last = true;
  }
  return g_last;
}

void BM_SupervisedSoak(benchmark::State& state) {
  for (auto _ : state) {
    const SoakReport& r = last_report();
    state.counters["requests"] = static_cast<double>(r.submitted);
    state.counters["committed"] = static_cast<double>(r.committed);
    state.counters["retries"] = static_cast<double>(r.retries);
    state.counters["storm_fires"] = static_cast<double>(r.storm_fires);
    state.counters["availability"] = r.availability;
    state.counters["converged"] = r.converged ? 1.0 : 0.0;
  }
}
BENCHMARK(BM_SupervisedSoak)->Unit(benchmark::kMillisecond)->Iterations(1);

/// Strip `--soak-json <path>` / `--soak-json=<path>` before
/// benchmark::Initialize (same contract as consume_obs_flags).
std::string consume_soak_flag(int& argc, char** argv) {
  std::string path;
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--soak-json=", 0) == 0) {
      path = arg.substr(12);
      continue;
    }
    if (arg == "--soak-json" && i + 1 < argc) {
      path = argv[++i];
      continue;
    }
    argv[w++] = argv[i];
  }
  argc = w;
  argv[argc] = nullptr;
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string soak_json = consume_soak_flag(argc, argv);
  const mercury::bench::ObsOptions obs_opts =
      mercury::bench::consume_obs_flags(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const SoakReport& r = last_report();
  std::printf(
      "\n=== Supervised soak (seed %llu, storm rate %.3f) ===\n"
      "requests: %llu submitted, %llu committed, %llu failed, "
      "%llu unresolved\n"
      "supervisor: %llu attempts, %llu retries, %llu quarantines, "
      "%llu recoveries, final health %s\n"
      "storm: %llu fires over %llu windows; engine rollbacks %llu\n"
      "availability: %.5f (%llu interruptions); workload %.1f MB moved; "
      "converged: %s, final mode %s\n",
      static_cast<unsigned long long>(r.seed), r.storm_rate,
      static_cast<unsigned long long>(r.submitted),
      static_cast<unsigned long long>(r.committed),
      static_cast<unsigned long long>(r.failed_deadline + r.failed_attempts +
                                      r.failed_quarantined + r.cancelled),
      static_cast<unsigned long long>(r.unresolved),
      static_cast<unsigned long long>(r.attempts),
      static_cast<unsigned long long>(r.retries),
      static_cast<unsigned long long>(r.quarantines),
      static_cast<unsigned long long>(r.recoveries), r.final_health.c_str(),
      static_cast<unsigned long long>(r.storm_fires),
      static_cast<unsigned long long>(r.storm_windows),
      static_cast<unsigned long long>(r.rollbacks), r.availability,
      static_cast<unsigned long long>(r.interruptions),
      static_cast<double>(r.workload_bytes) / (1024.0 * 1024.0),
      r.converged ? "yes" : "NO", r.final_mode.c_str());
  std::printf(
      "pause: %llu intervals, %llu unattributed, worst %llu cycles (%s)\n",
      static_cast<unsigned long long>(r.pause_intervals),
      static_cast<unsigned long long>(r.pause_unattributed),
      static_cast<unsigned long long>(r.pause_worst_cycles),
      r.pause_worst_cause.c_str());

  if (!soak_json.empty()) {
    if (mercury::cluster::write_soak_report(r, soak_json))
      std::printf("soak verdict written to %s (mercury.soak.v1)\n",
                  soak_json.c_str());
    else
      std::fprintf(stderr, "cannot open %s for writing\n", soak_json.c_str());
  }

  // Fleet leg: a 4-node cluster soak producing the time-series and feeding
  // the engine profiler cross-node dispatch samples. Only runs when one of
  // the fleet artifacts was requested — the single-machine soak above stays
  // the converged/exit-code authority either way.
  bool cluster_ok = true;
  if (!obs_opts.timeseries_json.empty() || !obs_opts.profile_json.empty()) {
    cluster::ClusterSoakParams cp;
    cp.seed = soak_seed();
    cluster::ClusterSoak cs(cp);
    cluster_ok = cs.run();
    const SoakReport fleet = cs.report();
    std::printf(
        "\n=== Cluster soak (%zu nodes, %llu waves) ===\n"
        "fleet: %llu submitted, %llu committed, %llu unresolved, "
        "mean availability %.5f, converged: %s\n",
        fleet.nodes.size(), static_cast<unsigned long long>(cs.waves_run()),
        static_cast<unsigned long long>(fleet.submitted),
        static_cast<unsigned long long>(fleet.committed),
        static_cast<unsigned long long>(fleet.unresolved), fleet.availability,
        fleet.converged ? "yes" : "NO");
    for (const cluster::NodeSoakStats& n : fleet.nodes)
      std::printf("  %s: %llu/%llu committed, %llu retries, avail %.5f "
                  "(%llu interruptions, %llu/%llu down cycles), pause "
                  "%llu/%llu worst %llu (%s), health %s, mode %s\n",
                  n.name.c_str(),
                  static_cast<unsigned long long>(n.committed),
                  static_cast<unsigned long long>(n.submitted),
                  static_cast<unsigned long long>(n.retries), n.availability,
                  static_cast<unsigned long long>(n.interruptions),
                  static_cast<unsigned long long>(n.downtime_cycles),
                  static_cast<unsigned long long>(n.span_cycles),
                  static_cast<unsigned long long>(n.pause_intervals),
                  static_cast<unsigned long long>(n.pause_unattributed),
                  static_cast<unsigned long long>(n.pause_worst_cycles),
                  n.pause_worst_cause.c_str(), n.final_health.c_str(),
                  n.final_mode.c_str());
    // The fleet verdict (with its nodes[] pause rollups) is schema-gated
    // alongside the single-machine one — see scripts/run_tiers.sh profile.
    if (!soak_json.empty()) {
      const std::string fleet_json = soak_json + ".fleet.json";
      if (mercury::cluster::write_soak_report(fleet, fleet_json))
        std::printf("fleet verdict written to %s (mercury.soak.v1)\n",
                    fleet_json.c_str());
      else
        std::fprintf(stderr, "cannot open %s for writing\n",
                     fleet_json.c_str());
    }
    if (!obs_opts.timeseries_json.empty()) {
      const std::string ts = cs.timeseries_json();
      if (std::FILE* f = std::fopen(obs_opts.timeseries_json.c_str(), "w")) {
        std::fwrite(ts.data(), 1, ts.size(), f);
        std::fclose(f);
        std::printf("time series written to %s (mercury.timeseries.v1)\n",
                    obs_opts.timeseries_json.c_str());
      } else {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     obs_opts.timeseries_json.c_str());
      }
    }
  }

  mercury::bench::write_obs_artifacts(obs_opts);
  return r.converged && cluster_ok ? 0 : 1;
}
