// Table 2 reproduction: lmbench OS-latency microbenchmarks, SMP mode (2
// CPUs), across the six evaluated systems.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "workloads/lmbench.hpp"

namespace {

using mercury::bench::CellResults;
using mercury::workloads::Lmbench;
using mercury::workloads::LmbenchParams;
using mercury::workloads::LmbenchResults;
using mercury::workloads::Sut;
using mercury::workloads::SystemId;

constexpr std::size_t kCpus = 2;

CellResults collect() {
  CellResults r;
  for (const SystemId id : mercury::workloads::kAllSystems) {
    auto sut = Sut::create(id, mercury::bench::paper_params(kCpus));
    LmbenchParams p;
    const LmbenchResults lb = Lmbench::run(sut->kernel(), p);
    r.set("Fork Process", id, lb.fork_us);
    r.set("Exec Process", id, lb.exec_us);
    r.set("Sh Process", id, lb.sh_us);
    r.set("Ctx (2p/0k)", id, lb.ctx_2p0k_us);
    r.set("Ctx (16p/16k)", id, lb.ctx_16p16k_us);
    r.set("Ctx (16p/64k)", id, lb.ctx_16p64k_us);
    r.set("Mmap LT", id, lb.mmap_us);
    r.set("Prot Fault", id, lb.prot_fault_us);
    r.set("Page Fault", id, lb.page_fault_us);
  }
  return r;
}

void BM_LmbenchSmpForkNative(benchmark::State& state) {
  for (auto _ : state) {
    auto sut = Sut::create(SystemId::kNL, mercury::bench::paper_params(kCpus));
    LmbenchParams p;
    p.fork_iters = 8;
    state.counters["sim_us"] = Lmbench::fork_latency(sut->kernel(), p);
  }
}
BENCHMARK(BM_LmbenchSmpForkNative)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  const mercury::bench::ObsOptions obs_opts =
      mercury::bench::consume_obs_flags(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf("\n=== Table 2: lmbench latency, SMP mode (us) — measured ===\n%s\n",
              mercury::bench::render_results(collect()).c_str());
  std::printf("=== Table 2: paper reference (us) ===\n%s\n",
              mercury::bench::render_paper_reference(
                  mercury::bench::paper_table2())
                  .c_str());
  mercury::bench::write_obs_artifacts(obs_opts);
  return 0;
}
