// Fig.3 reproduction: application-level relative performance, uniprocessor.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include "bench_apps_common.hpp"

namespace {

void BM_DbenchNative(benchmark::State& state) {
  for (auto _ : state) {
    auto sut = mercury::bench::Sut::create(mercury::bench::SystemId::kNL,
                                           mercury::bench::paper_params(1));
    const auto r = mercury::workloads::Dbench::run(sut->kernel());
    state.counters["sim_MBps"] = r.throughput_mb_s;
  }
}
BENCHMARK(BM_DbenchNative)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  const mercury::bench::ObsOptions obs_opts =
      mercury::bench::consume_obs_flags(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  mercury::bench::run_fig("Fig.3 (uniprocessor)", 1,
                          mercury::bench::fig3_reference());
  mercury::bench::write_obs_artifacts(obs_opts);
  return 0;
}
