// Shared bench harness helpers: paper reference data, table rendering, and
// the "run op across the six systems" loop.
#pragma once

#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "obs/postmortem.hpp"
#include "util/table.hpp"
#include "workloads/configs.hpp"

namespace mercury::bench {

/// Telemetry export destinations, parsed from the command line before
/// google-benchmark sees it (benchmark::Initialize rejects unknown flags).
struct ObsOptions {
  std::string metrics_json;     // --metrics-json <path>: obs registry snapshot
  std::string trace_json;       // --trace-json <path>: Chrome trace_event file
  std::string timeseries_json;  // --timeseries-json <path>: sampled series
  std::string profile_json;     // --profile-json <path>: engine profile
  std::string pause_json;       // --pause-json <path>: mercury.pause.v1 ledger

  bool any() const {
    return !metrics_json.empty() || !trace_json.empty() ||
           !timeseries_json.empty() || !profile_json.empty() ||
           !pause_json.empty();
  }
};

/// Strip the telemetry export flags (`--metrics-json`, `--trace-json`,
/// `--timeseries-json`, `--profile-json`, `--pause-json`, space- or
/// `=`-joined) out of
/// argv. Call before benchmark::Initialize. When only --metrics-json is
/// given, the Chrome trace defaults to `<metrics-json>.trace.json` so one
/// flag yields both artifacts. A --profile-json flag also enables the
/// engine profiler for the whole run.
inline ObsOptions consume_obs_flags(int& argc, char** argv) {
  // Bench binaries honour $MERCURY_POSTMORTEM_DIR but default bundles to
  // the build tree (beside the binary), not the invoking directory.
  obs::default_postmortem_dir_beside_binary();
  ObsOptions opts;
  const auto match = [&](int& i, const char* flag, std::string& out) {
    const std::size_t n = std::strlen(flag);
    if (std::strncmp(argv[i], flag, n) != 0) return false;
    if (argv[i][n] == '=') {
      out = argv[i] + n + 1;
      return true;
    }
    if (argv[i][n] == '\0' && i + 1 < argc) {
      out = argv[++i];
      return true;
    }
    return false;
  };
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    if (match(i, "--metrics-json", opts.metrics_json) ||
        match(i, "--trace-json", opts.trace_json) ||
        match(i, "--timeseries-json", opts.timeseries_json) ||
        match(i, "--profile-json", opts.profile_json) ||
        match(i, "--pause-json", opts.pause_json))
      continue;
    argv[w++] = argv[i];
  }
  argc = w;
  argv[argc] = nullptr;
  if (!opts.metrics_json.empty() && opts.trace_json.empty())
    opts.trace_json = opts.metrics_json + ".trace.json";
  if (opts.any()) obs::trace_buffer().set_enabled(true);
  if (!opts.profile_json.empty()) obs::profiler().set_enabled(true);
  return opts;
}

/// Dump the registry snapshot / trace ring to the paths in `opts`.
/// Call once, after the bench's workloads have run.
inline void write_obs_artifacts(const ObsOptions& opts) {
  if (!opts.metrics_json.empty()) {
    if (std::FILE* f = std::fopen(opts.metrics_json.c_str(), "w")) {
      const std::string json = obs::to_json(obs::snapshot());
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("metrics snapshot written to %s\n",
                  opts.metrics_json.c_str());
    } else {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   opts.metrics_json.c_str());
    }
  }
  if (!opts.trace_json.empty()) {
    if (obs::write_chrome_trace(opts.trace_json)) {
      std::printf("chrome trace written to %s (open via chrome://tracing)\n",
                  opts.trace_json.c_str());
    } else {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   opts.trace_json.c_str());
    }
  }
  if (!opts.profile_json.empty()) {
    if (obs::write_profile_json(opts.profile_json)) {
      std::printf("engine profile written to %s (mercury.profile.v1)\n",
                  opts.profile_json.c_str());
    } else {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   opts.profile_json.c_str());
    }
  }
  if (!opts.pause_json.empty()) {
    // The ambient ledger: benches that sweep cells under PauseLedgerScope
    // merge each cell's ledger back into the global so the artifact covers
    // the whole run.
    if (std::FILE* f = std::fopen(opts.pause_json.c_str(), "w")) {
      const std::string json = obs::pause_ledger().to_json();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("pause ledger written to %s (mercury.pause.v1)\n",
                  opts.pause_json.c_str());
    } else {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   opts.pause_json.c_str());
    }
  }
}

using workloads::Sut;
using workloads::SutParams;
using workloads::SystemId;

/// Paper-scale parameters (DELL SC1420: 2x3GHz, 2GB; 900 000 KB per variant).
inline SutParams paper_params(std::size_t cpus) {
  SutParams p;
  p.cpus = cpus;
  return p;
}

/// Reduced-memory parameters for quick runs (mode-switch costs scale with
/// memory; everything else is unaffected).
inline SutParams quick_params(std::size_t cpus) {
  SutParams p;
  p.cpus = cpus;
  p.machine_mem_kb = 512 * 1024;
  p.kernel_mem_kb = 200 * 1024;
  p.domu_mem_kb = 160 * 1024;
  return p;
}

struct CellResults {
  // results[row_label][system] = value
  std::vector<std::string> row_labels;
  std::map<std::string, std::map<SystemId, double>> values;

  void set(const std::string& row, SystemId sys, double v) {
    if (values.find(row) == values.end()) row_labels.push_back(row);
    values[row][sys] = v;
  }
};

/// Render in the paper's layout: rows = operations, columns = systems.
inline std::string render_results(const CellResults& r, int decimals = 2) {
  util::Table t({"Config.", "N-L", "M-N", "X-0", "M-V", "X-U", "M-U"});
  for (const auto& row : r.row_labels) {
    std::vector<double> vals;
    for (const SystemId id : {SystemId::kNL, SystemId::kMN, SystemId::kX0,
                              SystemId::kMV, SystemId::kXU, SystemId::kMU}) {
      auto it = r.values.at(row).find(id);
      vals.push_back(it == r.values.at(row).end() ? 0.0 : it->second);
    }
    t.add_numeric_row(row, vals, decimals);
  }
  return t.render();
}

/// Paper reference values (for the side-by-side shape check printed by each
/// bench and recorded in EXPERIMENTS.md).
struct PaperRow {
  const char* label;
  double nl, mn, x0, mv, xu, mu;
};

inline const std::vector<PaperRow>& paper_table1() {
  static const std::vector<PaperRow> rows = {
      {"Fork Process", 98, 114, 482, 490, 470, 471},
      {"Exec Process", 372, 404, 1233, 1232, 1211, 1220},
      {"Sh Process", 1203, 1337, 2977, 2996, 2936, 2931},
      {"Ctx (2p/0k)", 1.64, 2.49, 5.10, 5.41, 5.04, 5.06},
      {"Ctx (16p/16k)", 2.73, 3.91, 6.76, 7.28, 6.54, 6.45},
      {"Ctx (16p/64k)", 10.30, 12.77, 15.73, 16.27, 15.77, 15.97},
      {"Mmap LT", 3724, 3995, 10579, 11800, 10867, 11067},
      {"Prot Fault", 0.61, 0.63, 0.97, 1.17, 1.04, 1.11},
      {"Page Fault", 1.22, 1.48, 3.09, 3.18, 3.03, 3.10},
  };
  return rows;
}

inline const std::vector<PaperRow>& paper_table2() {
  static const std::vector<PaperRow> rows = {
      {"Fork Process", 128, 148, 509, 523, 501, 501},
      {"Exec Process", 449, 501, 1353, 1386, 1335, 1349},
      {"Sh Process", 1444, 1585, 3359, 3435, 3222, 3319},
      {"Ctx (2p/0k)", 2.31, 3.07, 5.16, 5.61, 5.11, 5.14},
      {"Ctx (16p/16k)", 2.91, 4.15, 7.16, 7.27, 6.83, 7.02},
      {"Ctx (16p/64k)", 11.03, 12.40, 16.17, 16.77, 16.10, 16.60},
      {"Mmap LT", 5449, 5731, 12200, 13000, 12433, 12533},
      {"Prot Fault", 0.70, 0.74, 1.13, 1.20, 1.15, 1.18},
      {"Page Fault", 1.64, 1.89, 3.45, 3.67, 3.39, 3.46},
  };
  return rows;
}

inline std::string render_paper_reference(const std::vector<PaperRow>& rows) {
  util::Table t({"Config.", "N-L", "M-N", "X-0", "M-V", "X-U", "M-U"});
  for (const auto& r : rows)
    t.add_numeric_row(r.label, {r.nl, r.mn, r.x0, r.mv, r.xu, r.mu}, 2);
  return t.render();
}

}  // namespace mercury::bench
