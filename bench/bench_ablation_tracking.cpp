// §5.1.2 ablation: eager page-info tracking vs lazy rebuild.
//
// The paper implemented both, measured ~2-3% native-mode overhead for the
// eager variant against only a small attach-time saving, and shipped lazy.
// This bench reproduces that trade-off: native-mode lmbench fork/mmap and a
// dbench run under both variants, plus the attach/detach times.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/mercury.hpp"
#include "kernel/syscalls.hpp"
#include "util/table.hpp"
#include "workloads/dbench.hpp"
#include "workloads/lmbench.hpp"

namespace {

using mercury::core::ExecMode;
using mercury::core::Mercury;
using mercury::core::MercuryConfig;

struct VariantResult {
  double fork_us = 0;
  double mmap_us = 0;
  double dbench_mbs = 0;
  double attach_ms = 0;
  double detach_ms = 0;
};

VariantResult measure(bool eager) {
  mercury::hw::MachineConfig mc;
  mc.mem_kb = 1'000'000;
  auto machine = std::make_unique<mercury::hw::Machine>(mc);
  MercuryConfig cfg;
  cfg.kernel_frames = (900'000ull * 1024) / mercury::hw::kPageSize;
  cfg.switch_config.eager_page_tracking = eager;
  Mercury mercury(*machine, cfg);

  VariantResult r;
  mercury::workloads::LmbenchParams lp;
  lp.fork_iters = 12;
  lp.mmap_iters = 2;
  r.fork_us = mercury::workloads::Lmbench::fork_latency(mercury.kernel(), lp);
  r.mmap_us = mercury::workloads::Lmbench::mmap_latency(mercury.kernel(), lp);
  mercury::workloads::DbenchParams dp;
  dp.loops_per_client = 10;
  r.dbench_mbs = mercury::workloads::Dbench::run(mercury.kernel(), dp)
                     .throughput_mb_s;

  for (int i = 0; i < 3; ++i) {
    if (!mercury.switch_to(ExecMode::kPartialVirtual)) break;
    r.attach_ms += mercury::hw::cycles_to_us(
                       mercury.engine().stats().last_attach_cycles) /
                   3000.0;
    if (!mercury.switch_to(ExecMode::kNative)) break;
    r.detach_ms += mercury::hw::cycles_to_us(
                       mercury.engine().stats().last_detach_cycles) /
                   3000.0;
  }
  return r;
}

void BM_EagerTrackingForkOverhead(benchmark::State& state) {
  for (auto _ : state) {
    const VariantResult lazy = measure(false);
    const VariantResult eager = measure(true);
    state.counters["native_overhead_pct"] =
        (eager.fork_us / lazy.fork_us - 1.0) * 100.0;
  }
}
BENCHMARK(BM_EagerTrackingForkOverhead)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  const mercury::bench::ObsOptions obs_opts =
      mercury::bench::consume_obs_flags(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const VariantResult lazy = measure(false);
  const VariantResult eager = measure(true);

  mercury::util::Table t({"Metric", "lazy (paper's choice)", "eager",
                          "eager overhead"});
  auto pct = [](double e, double l) {
    return mercury::util::format_fixed((e / l - 1.0) * 100.0, 2) + " %";
  };
  t.add_row({"lmbench fork (us)", mercury::util::format_fixed(lazy.fork_us, 2),
             mercury::util::format_fixed(eager.fork_us, 2),
             pct(eager.fork_us, lazy.fork_us)});
  t.add_row({"lmbench mmap (us)", mercury::util::format_fixed(lazy.mmap_us, 1),
             mercury::util::format_fixed(eager.mmap_us, 1),
             pct(eager.mmap_us, lazy.mmap_us)});
  t.add_row({"dbench (MB/s)", mercury::util::format_fixed(lazy.dbench_mbs, 1),
             mercury::util::format_fixed(eager.dbench_mbs, 1),
             pct(lazy.dbench_mbs, eager.dbench_mbs)});
  t.add_row({"attach (ms)", mercury::util::format_fixed(lazy.attach_ms, 4),
             mercury::util::format_fixed(eager.attach_ms, 4),
             mercury::util::format_fixed(
                 (1.0 - eager.attach_ms / lazy.attach_ms) * 100.0, 1) +
                 " % saved"});
  t.add_row({"detach (ms)", mercury::util::format_fixed(lazy.detach_ms, 4),
             mercury::util::format_fixed(eager.detach_ms, 4), "-"});

  std::printf("\n=== Ablation §5.1.2: eager page tracking vs lazy rebuild ===\n%s\n",
              t.render().c_str());
  std::printf("paper: eager variant costs ~2-3%% in native mode and \"saves "
              "only a small amount of mode switch time\"; the lazy rebuild "
              "was chosen.\n");
  mercury::bench::write_obs_artifacts(obs_opts);
  return 0;
}
