// §7.4 reproduction: mode-switch time. The paper measures ~0.22 ms for
// native -> virtual and ~0.06 ms for virtual -> native on a 3 GHz Xeon with
// 900 000 KB of kernel memory, attach dominated by the page type/count
// recomputation. This bench sweeps memory size, process count and CPU count
// to expose those proportionalities.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/mercury.hpp"
#include "kernel/syscalls.hpp"
#include "util/table.hpp"

namespace {

using mercury::core::ExecMode;
using mercury::core::Mercury;
using mercury::core::MercuryConfig;

struct SwitchTimes {
  double attach_ms = 0;
  double detach_ms = 0;
  // Bulk transfer phases only (page-info rebuild + protect on attach, PT
  // unprotect on detach). On SMP machines the totals above also carry the
  // rendezvous wait — inter-CPU clock skew identical on the serial and crew
  // paths — so the crew speedup is visible here, not in the totals.
  double attach_transfer_ms = 0;
  double detach_transfer_ms = 0;
  // Per-CPU unavailability intervals recorded while this cell ran (scoped
  // per cell, merged into the ambient ledger for the --pause-json artifact).
  mercury::obs::PauseLedger pauses;
};

std::unique_ptr<mercury::hw::Machine> make_machine(std::size_t mem_kb,
                                                   std::size_t cpus) {
  mercury::hw::MachineConfig mc;
  mc.mem_kb = mem_kb + 80 * 1024;  // headroom for VMM reservation + holdback
  mc.num_cpus = cpus;
  return std::make_unique<mercury::hw::Machine>(mc);
}

SwitchTimes measure(std::size_t kernel_mem_kb, std::size_t cpus, int processes,
                    int round_trips = 3, std::size_t crew_workers = 0) {
  auto machine = make_machine(kernel_mem_kb, cpus);
  MercuryConfig cfg;
  cfg.kernel_frames = (kernel_mem_kb * 1024) / mercury::hw::kPageSize;
  cfg.switch_config.crew_workers = crew_workers;
  Mercury mercury(*machine, cfg);

  // Populate with long-lived processes so the switch walks real tasks/PTs.
  for (int i = 0; i < processes; ++i) {
    mercury.kernel().spawn(
        "resident",
        [](mercury::kernel::Sys& s) -> mercury::kernel::Sub<void> {
          const auto va = s.mmap(64 * mercury::hw::kPageSize, true);
          s.touch_pages(va, 64, true);
          for (;;) co_await s.sleep_us(50'000.0);
        });
  }
  mercury.kernel().run_for(5 * mercury::hw::kCyclesPerMillisecond);

  SwitchTimes t;
  mercury::obs::PauseLedgerScope pause_scope(t.pauses);
  for (int i = 0; i < round_trips; ++i) {
    if (!mercury.switch_to(ExecMode::kPartialVirtual)) return t;
    t.attach_ms +=
        mercury::hw::cycles_to_us(mercury.engine().stats().last_attach_cycles) /
        1000.0;
    t.attach_transfer_ms +=
        mercury::hw::cycles_to_us(
            mercury.engine().stats().last_transfer.page_info_cycles) /
        1000.0;
    if (!mercury.switch_to(ExecMode::kNative)) return t;
    t.detach_ms +=
        mercury::hw::cycles_to_us(mercury.engine().stats().last_detach_cycles) /
        1000.0;
    t.detach_transfer_ms +=
        mercury::hw::cycles_to_us(
            mercury.engine().stats().last_transfer.protection_cycles) /
        1000.0;
  }
  t.attach_ms /= round_trips;
  t.detach_ms /= round_trips;
  t.attach_transfer_ms /= round_trips;
  t.detach_transfer_ms /= round_trips;
  return t;
}

struct WarmTimes {
  double cold_attach_ms = 0;  // first attach: full page-info rebuild
  double warm_attach_ms = 0;  // second attach: dirty-set reconstruction
  double dirty_frames = 0;
  double frames_retained = 0;
  mercury::obs::PauseLedger pauses;
};

// Warm re-attach leg: cold first attach, retaining detach, a short native
// dwell that dirties a small fraction of frames, then a warm second attach
// that reconstructs only the dirty set. The paper's pitch is that repeated
// virtualization entry should cost proportional to what changed, not to
// kernel-memory size.
WarmTimes measure_warm(std::size_t kernel_mem_kb, int processes) {
  auto machine = make_machine(kernel_mem_kb, 1);
  MercuryConfig cfg;
  cfg.kernel_frames = (kernel_mem_kb * 1024) / mercury::hw::kPageSize;
  cfg.switch_config.warm_reattach = true;
  Mercury mercury(*machine, cfg);

  for (int i = 0; i < processes; ++i) {
    mercury.kernel().spawn(
        "resident",
        [](mercury::kernel::Sys& s) -> mercury::kernel::Sub<void> {
          const auto va = s.mmap(64 * mercury::hw::kPageSize, true);
          s.touch_pages(va, 64, true);
          for (;;) co_await s.sleep_us(50'000.0);
        });
  }
  mercury.kernel().run_for(5 * mercury::hw::kCyclesPerMillisecond);

  WarmTimes w;
  mercury::obs::PauseLedgerScope pause_scope(w.pauses);
  if (!mercury.switch_to(ExecMode::kPartialVirtual)) return w;
  w.cold_attach_ms =
      mercury::hw::cycles_to_us(mercury.engine().stats().last_attach_cycles) /
      1000.0;
  if (!mercury.switch_to(ExecMode::kNative)) return w;  // retaining detach

  // Dirty window: one busy process touching a bounded working set — well
  // under 1% of a 900 MB kernel image.
  mercury.kernel().spawn(
      "dirtier", [](mercury::kernel::Sys& s) -> mercury::kernel::Sub<void> {
        const auto va = s.mmap(128 * mercury::hw::kPageSize, true);
        for (;;) {
          s.touch_pages(va, 128, true);
          co_await s.compute_us(100.0);
        }
      });
  mercury.kernel().run_for(2 * mercury::hw::kCyclesPerMillisecond);

  if (!mercury.switch_to(ExecMode::kPartialVirtual)) return w;
  const auto& st = mercury.engine().stats();
  if (st.warm_attaches == 0) return w;  // fell back cold: report speedup 0
  w.warm_attach_ms =
      mercury::hw::cycles_to_us(st.last_attach_cycles) / 1000.0;
  w.dirty_frames = static_cast<double>(st.last_dirty_frames);
  w.frames_retained = static_cast<double>(st.last_frames_retained);
  return w;
}

// Record one sweep cell into the obs registry so --metrics-json carries the
// tracked baseline (BENCH_modeswitch.json) that check_bench_json.py
// validates.
// Per-cause pause tail for one sweep cell: p50/p99 (log2 bucket bounds) and
// the exact worst, in microseconds. Silent causes emit zeros so the tracked
// baseline's gauge set is stable across runs, and the cell ledger is merged
// into the ambient ledger so --pause-json covers the whole sweep.
void record_pause_cell(const std::string& key,
                       const mercury::obs::PauseLedger& pl) {
  mercury::obs::MetricsRegistry& reg = mercury::obs::registry();
  for (std::size_t i = 0; i < mercury::obs::kPauseCauseCount; ++i) {
    const auto cause = static_cast<mercury::obs::PauseCause>(i);
    const std::string base = "bench.modeswitch." + key + "." +
                             mercury::obs::pause_cause_name(cause);
    reg.gauge(base + ".pause_p50_us")
        .set(mercury::hw::cycles_to_us(pl.quantile(cause, 0.50)));
    reg.gauge(base + ".pause_p99_us")
        .set(mercury::hw::cycles_to_us(pl.quantile(cause, 0.99)));
    reg.gauge(base + ".pause_worst_us")
        .set(mercury::hw::cycles_to_us(pl.quantile(cause, 1.0)));
  }
  mercury::obs::pause_ledger().merge(pl);
}

void record_cell(const std::string& key, const SwitchTimes& s) {
  mercury::obs::MetricsRegistry& reg = mercury::obs::registry();
  reg.gauge("bench.modeswitch." + key + ".attach_ms").set(s.attach_ms);
  reg.gauge("bench.modeswitch." + key + ".detach_ms").set(s.detach_ms);
  reg.gauge("bench.modeswitch." + key + ".attach_transfer_ms")
      .set(s.attach_transfer_ms);
  reg.gauge("bench.modeswitch." + key + ".detach_transfer_ms")
      .set(s.detach_transfer_ms);
  record_pause_cell(key, s.pauses);
}

void BM_AttachPaperScale(benchmark::State& state) {
  for (auto _ : state) {
    const SwitchTimes t = measure(900'000, 1, 4, 1);
    state.counters["attach_sim_ms"] = t.attach_ms;
    state.counters["detach_sim_ms"] = t.detach_ms;
  }
}
BENCHMARK(BM_AttachPaperScale)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  mercury::bench::ObsOptions obs_opts =
      mercury::bench::consume_obs_flags(argc, argv);
  // The mode-switch bench is the repo's tracked perf baseline: always emit
  // the metrics artifact, defaulting to BENCH_modeswitch.json in the
  // working directory when --metrics-json is not given.
  if (obs_opts.metrics_json.empty()) obs_opts.metrics_json = "BENCH_modeswitch.json";
  // The pause observatory rides along: one mercury.pause.v1 artifact per
  // run, validated by check_bench_json.py in the CI bench gate.
  if (obs_opts.pause_json.empty())
    obs_opts.pause_json = obs_opts.metrics_json + ".pause.json";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  {
    mercury::util::Table t({"Memory (KB)", "attach (ms)", "detach (ms)"});
    for (const std::size_t mem_kb :
         {112'500ul, 225'000ul, 450'000ul, 900'000ul}) {
      const SwitchTimes s = measure(mem_kb, 1, 4);
      record_cell("up.mem_kb=" + std::to_string(mem_kb), s);
      t.add_numeric_row(std::to_string(mem_kb),
                        {s.attach_ms, s.detach_ms}, 4);
    }
    std::printf("\n=== Mode switch time vs kernel memory (UP, 4 procs) ===\n%s\n",
                t.render().c_str());
  }
  {
    // Parallel switch pipeline ablation: kernel-memory size x crew width on
    // a 4-CPU box. Serial (crew=0) vs crew transfer latency; the largest
    // memory with crew_workers = ncpus-1 is the headline speedup.
    constexpr std::size_t kCpus = 4;
    mercury::util::Table t({"Memory (KB)", "crew=0 (ms)", "crew=1 (ms)",
                            "crew=2 (ms)", "crew=3 (ms)", "speedup x"});
    double largest_speedup = 0.0;
    for (const std::size_t mem_kb :
         {112'500ul, 225'000ul, 450'000ul, 900'000ul}) {
      std::vector<double> attach(kCpus, 0.0);
      for (std::size_t workers = 0; workers < kCpus; ++workers) {
        const SwitchTimes s = measure(mem_kb, kCpus, 4, 3, workers);
        record_cell("smp.mem_kb=" + std::to_string(mem_kb) +
                        ".crew=" + std::to_string(workers),
                    s);
        attach[workers] = s.attach_transfer_ms;
      }
      largest_speedup = attach[0] / attach[kCpus - 1];
      t.add_numeric_row(std::to_string(mem_kb),
                        {attach[0], attach[1], attach[2], attach[3],
                         largest_speedup}, 4);
    }
    mercury::obs::registry()
        .gauge("bench.modeswitch.crew_speedup_largest_mem")
        .set(largest_speedup);
    std::printf(
        "=== Attach transfer vs crew width (4 CPUs, 4 procs) ===\n%s\n",
        t.render().c_str());
    std::printf("crew=3 speedup at 900 000 KB: %.2fx (target >= 2x)\n\n",
                largest_speedup);
  }
  {
    mercury::util::Table t({"Processes", "attach (ms)", "detach (ms)"});
    for (const int procs : {1, 8, 32, 128}) {
      const SwitchTimes s = measure(225'000, 1, procs);
      t.add_numeric_row(std::to_string(procs), {s.attach_ms, s.detach_ms}, 4);
    }
    std::printf("=== Mode switch time vs process count (UP, 225 MB) ===\n%s\n",
                t.render().c_str());
  }
  {
    mercury::util::Table t({"CPUs", "attach (ms)", "detach (ms)"});
    for (const std::size_t cpus : {1ul, 2ul, 4ul}) {
      const SwitchTimes s = measure(225'000, cpus, 4);
      t.add_numeric_row(std::to_string(cpus), {s.attach_ms, s.detach_ms}, 4);
    }
    std::printf("=== Mode switch time vs CPU count (225 MB, 4 procs) ===\n%s\n",
                t.render().c_str());
  }
  {
    // Warm re-attach ablation: retained page-info table + dirty-set rebuild
    // vs a from-scratch cold attach, swept over kernel-memory size. The
    // headline gauge is the 900 MB cell: a warm second attach with a ~1%
    // dirty window must be >= 10x cheaper than the cold first attach.
    mercury::util::Table t({"Memory (KB)", "cold (ms)", "warm (ms)",
                            "dirty frames", "retained", "speedup x"});
    double largest_speedup = 0.0;
    WarmTimes largest;
    for (const std::size_t mem_kb :
         {112'500ul, 225'000ul, 450'000ul, 900'000ul}) {
      const WarmTimes w = measure_warm(mem_kb, 4);
      const double speedup =
          w.warm_attach_ms > 0.0 ? w.cold_attach_ms / w.warm_attach_ms : 0.0;
      record_pause_cell("warm.mem_kb=" + std::to_string(mem_kb), w.pauses);
      const std::string key =
          "bench.modeswitch.warm.mem_kb=" + std::to_string(mem_kb);
      mercury::obs::MetricsRegistry& reg = mercury::obs::registry();
      reg.gauge(key + ".cold_attach_ms").set(w.cold_attach_ms);
      reg.gauge(key + ".warm_attach_ms").set(w.warm_attach_ms);
      reg.gauge(key + ".dirty_frames").set(w.dirty_frames);
      reg.gauge(key + ".frames_retained").set(w.frames_retained);
      t.add_numeric_row(std::to_string(mem_kb),
                        {w.cold_attach_ms, w.warm_attach_ms, w.dirty_frames,
                         w.frames_retained, speedup}, 4);
      largest_speedup = speedup;
      largest = w;
    }
    mercury::obs::registry()
        .gauge("bench.modeswitch.warm_reattach_speedup")
        .set(largest_speedup);
    std::printf("=== Warm re-attach vs cold attach (UP, 4 procs) ===\n%s\n",
                t.render().c_str());
    std::printf(
        "warm speedup at 900 000 KB: %.2fx (%.0f dirty of %.0f retained, "
        "target >= 10x)\n\n",
        largest_speedup, largest.dirty_frames,
        largest.dirty_frames + largest.frames_retained);
  }
  {
    const SwitchTimes s = measure(900'000, 1, 4);
    std::printf("=== Paper-scale switch (900 000 KB, 3 GHz) ===\n");
    std::printf("measured: attach %.3f ms, detach %.3f ms\n", s.attach_ms,
                s.detach_ms);
    std::printf("paper:    attach ~0.22 ms, detach ~0.06 ms\n");
  }
  mercury::bench::write_obs_artifacts(obs_opts);
  return 0;
}
