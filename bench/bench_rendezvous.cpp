// §8 (future work) ablation: mode-switch rendezvous scalability — the
// paper's IPI + shared-variable protocol vs the loosely-coupled tree
// protocol it suggests for larger core counts.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <cstdio>
#include <memory>

#include "core/rendezvous.hpp"
#include "util/table.hpp"

namespace {

using mercury::core::Rendezvous;
using mercury::core::RendezvousProtocol;

double rendezvous_us(std::size_t cpus, RendezvousProtocol proto) {
  mercury::hw::MachineConfig mc;
  mc.num_cpus = cpus;
  mc.mem_kb = 64 * 1024;
  mercury::hw::Machine machine(mc);
  // Skew the clocks a little, as real CPUs are never aligned.
  for (std::size_t i = 0; i < cpus; ++i)
    machine.cpu(i).charge(1000 + 313 * i);
  const auto stats = Rendezvous::run(machine, machine.cpu(0), proto);
  return mercury::hw::cycles_to_us(stats.latency());
}

void BM_RendezvousIpi32(benchmark::State& state) {
  for (auto _ : state) {
    state.counters["sim_us"] =
        rendezvous_us(32, RendezvousProtocol::kIpiSharedVar);
  }
}
BENCHMARK(BM_RendezvousIpi32)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  const mercury::bench::ObsOptions obs_opts =
      mercury::bench::consume_obs_flags(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  mercury::util::Table t(
      {"CPUs", "ipi+shared-var (us)", "tree (us)", "tree speedup"});
  for (const std::size_t cpus : {1ul, 2ul, 4ul, 8ul, 16ul, 32ul}) {
    const double ipi = rendezvous_us(cpus, RendezvousProtocol::kIpiSharedVar);
    const double tree = rendezvous_us(cpus, RendezvousProtocol::kTree);
    t.add_numeric_row(std::to_string(cpus),
                      {ipi, tree, tree > 0 ? ipi / tree : 0.0}, 3);
  }
  std::printf("\n=== Rendezvous protocol scalability (mode-switch barrier) ===\n%s\n",
              t.render().c_str());
  std::printf("paper §8: \"a more loosely-coupled synchronization protocol "
              "might be necessary ... instead of current protocols using IPI "
              "and shared variables\" — the cacheline-bouncing shared counter "
              "grows linearly with core count, the tree logarithmically.\n");
  mercury::bench::write_obs_artifacts(obs_opts);
  return 0;
}
