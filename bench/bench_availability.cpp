// §6 scenario quantification: availability of an HPC node-year under three
// operating strategies, using *measured* costs from the simulator:
//   stop&restart  — no virtualization: every maintenance/failure event stops
//                   the workload for repair + reboot.
//   always-on VMM — Xen-style: migration hides the events, but the workload
//                   pays the virtualization tax continuously.
//   Mercury       — self-virtualization: migration hides the events, the
//                   tax is paid only during the (rare) migration windows.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include <cmath>
#include <cstdio>

#include "cluster/failure.hpp"
#include "cluster/scenarios.hpp"
#include "kernel/syscalls.hpp"
#include "util/table.hpp"
#include "workloads/configs.hpp"
#include "workloads/kbuild.hpp"

namespace {

using namespace mercury;
using kernel::Sub;
using kernel::Sys;

struct MeasuredCosts {
  double evac_downtime_ms = 0;   // stop-and-copy pause per event
  double evac_total_ms = 0;      // full migration wall time
  double attach_ms = 0;
  double detach_ms = 0;
  double virt_slowdown = 0.10;   // measured compute overhead under the VMM
};

MeasuredCosts measure() {
  MeasuredCosts m;
  cluster::Fabric fabric;
  auto& a = fabric.add_node("a");
  auto& b = fabric.add_node("b");
  fabric.connect(a, b);
  a.mercury().kernel().spawn("solver", [](Sys& s) -> Sub<void> {
    const auto grid = s.mmap(128 * hw::kPageSize, true);
    s.touch_pages(grid, 128, true);
    for (;;) {
      co_await s.compute_us(500.0);
      s.touch_pages(grid, 16, true);
    }
  });
  a.mercury().kernel().run_for(10 * hw::kCyclesPerMillisecond);

  const auto ev = cluster::evacuate(a, b);
  m.evac_downtime_ms = hw::cycles_to_us(ev.migration.downtime_cycles) / 1000.0;
  m.evac_total_ms = hw::cycles_to_us(ev.migration.total_cycles) / 1000.0;

  // Attach/detach cost on a third node.
  cluster::Fabric f2;
  auto& c = f2.add_node("c");
  MERC_CHECK(c.mercury().switch_to(core::ExecMode::kPartialVirtual));
  m.attach_ms =
      hw::cycles_to_us(c.mercury().engine().stats().last_attach_cycles) / 1000.0;
  MERC_CHECK(c.mercury().switch_to(core::ExecMode::kNative));
  m.detach_ms =
      hw::cycles_to_us(c.mercury().engine().stats().last_detach_cycles) / 1000.0;

  // Virtualization slowdown on a compute-heavy workload (kbuild, X-0 vs N-L).
  {
    auto nl = workloads::Sut::create(workloads::SystemId::kNL);
    auto x0 = workloads::Sut::create(workloads::SystemId::kX0);
    workloads::KbuildParams kp;
    kp.translation_units = 6;
    const double t_nl = workloads::Kbuild::run(nl->kernel(), kp).build_seconds;
    const double t_x0 = workloads::Kbuild::run(x0->kernel(), kp).build_seconds;
    m.virt_slowdown = t_x0 / t_nl - 1.0;
  }
  return m;
}

void BM_EvacuationDowntime(benchmark::State& state) {
  for (auto _ : state) {
    const MeasuredCosts m = measure();
    state.counters["downtime_sim_ms"] = m.evac_downtime_ms;
  }
}
BENCHMARK(BM_EvacuationDowntime)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  const mercury::bench::ObsOptions obs_opts =
      mercury::bench::consume_obs_flags(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const MeasuredCosts m = measure();
  std::printf("\nmeasured: evacuation downtime %.3f ms (total %.1f ms), "
              "attach %.3f ms, detach %.3f ms, VMM compute tax %.1f%%\n",
              m.evac_downtime_ms, m.evac_total_ms, m.attach_ms, m.detach_ms,
              m.virt_slowdown * 100.0);

  // Node-year projection: maintenance + predicted-failure events.
  const double year_s = 365.0 * 24 * 3600;
  const double events_per_year = 26.0;      // fortnightly maintenance/predicted
  const double repair_reboot_s = 420.0;     // stop & restart: repair + boot + warmup

  struct Strategy {
    const char* name;
    double downtime_s;
    double effective_speed;  // fraction of native throughput while up
  };
  const Strategy strategies[] = {
      {"stop & restart (no virt)", events_per_year * repair_reboot_s, 1.0},
      {"always-on VMM (Xen)",
       events_per_year * (m.evac_downtime_ms / 1000.0),
       1.0 / (1.0 + m.virt_slowdown)},
      {"Mercury self-virtualization",
       events_per_year *
           (m.evac_downtime_ms + 2 * (m.attach_ms + m.detach_ms)) / 1000.0,
       1.0 - (events_per_year * m.evac_total_ms / 1000.0 / year_s) *
                 m.virt_slowdown},
  };

  mercury::util::Table t({"Strategy", "downtime/yr (s)", "availability",
                          "nines", "relative work done"});
  for (const auto& s : strategies) {
    const double avail = 1.0 - s.downtime_s / year_s;
    const double nines = -std::log10(1.0 - avail);
    t.add_row({s.name, mercury::util::format_fixed(s.downtime_s, 3),
               mercury::util::format_fixed(avail * 100.0, 6) + " %",
               mercury::util::format_fixed(nines, 1),
               mercury::util::format_fixed(
                   s.effective_speed * (avail), 4)});
  }
  std::printf("\n=== Node-year availability projection (%g events/yr) ===\n%s\n",
              events_per_year, t.render().c_str());
  std::printf("paper §6: \"the market is heading toward 99.999%% availability\" "
              "— only the self-virtualizing strategy reaches five nines "
              "without sacrificing native throughput.\n");
  mercury::bench::write_obs_artifacts(obs_opts);
  return 0;
}
