// Table 1 reproduction: lmbench OS-latency microbenchmarks, uniprocessor
// mode, across the six evaluated systems. Also registers google-benchmark
// timers over the same drivers so host-side performance is tracked.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "workloads/lmbench.hpp"

namespace {

using mercury::bench::CellResults;
using mercury::bench::SutParams;
using mercury::workloads::Lmbench;
using mercury::workloads::LmbenchParams;
using mercury::workloads::LmbenchResults;
using mercury::workloads::Sut;
using mercury::workloads::SystemId;

constexpr std::size_t kCpus = 1;

LmbenchResults run_system(SystemId id) {
  auto sut = Sut::create(id, mercury::bench::paper_params(kCpus));
  LmbenchParams p;
  return Lmbench::run(sut->kernel(), p);
}

CellResults collect() {
  CellResults r;
  for (const SystemId id : mercury::workloads::kAllSystems) {
    const LmbenchResults lb = run_system(id);
    r.set("Fork Process", id, lb.fork_us);
    r.set("Exec Process", id, lb.exec_us);
    r.set("Sh Process", id, lb.sh_us);
    r.set("Ctx (2p/0k)", id, lb.ctx_2p0k_us);
    r.set("Ctx (16p/16k)", id, lb.ctx_16p16k_us);
    r.set("Ctx (16p/64k)", id, lb.ctx_16p64k_us);
    r.set("Mmap LT", id, lb.mmap_us);
    r.set("Prot Fault", id, lb.prot_fault_us);
    r.set("Page Fault", id, lb.page_fault_us);
  }
  return r;
}

// google-benchmark wrapper: one iteration = the full lmbench sweep on N-L
// (host time; simulated latency reported as a counter).
void BM_LmbenchNativeSweep(benchmark::State& state) {
  for (auto _ : state) {
    const LmbenchResults lb = run_system(SystemId::kNL);
    state.counters["fork_sim_us"] = lb.fork_us;
    state.counters["pf_sim_us"] = lb.page_fault_us;
    benchmark::DoNotOptimize(lb);
  }
}
BENCHMARK(BM_LmbenchNativeSweep)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  const mercury::bench::ObsOptions obs_opts =
      mercury::bench::consume_obs_flags(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n=== Table 1: lmbench latency, uniprocessor mode (us) — "
              "measured ===\n%s\n",
              mercury::bench::render_results(collect()).c_str());
  std::printf("=== Table 1: paper reference (us) ===\n%s\n",
              mercury::bench::render_paper_reference(
                  mercury::bench::paper_table1())
                  .c_str());
  mercury::bench::write_obs_artifacts(obs_opts);
  return 0;
}
